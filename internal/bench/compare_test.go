package bench

import (
	"strings"
	"testing"
)

func baselineReport() *Report {
	return &Report{
		Schema: ReportSchema,
		Makespans: map[string]int64{
			"tree/serial/depth1/threads1/procs8":  10_000,
			"tree/amplify/depth1/threads4/procs8": 3_000,
			"bgw/smartheap/amplify/threads2":      50_000,
		},
		Heap: map[string]HeapCell{
			"tree/serial/depth1/threads1/procs8":  {Footprint: 1 << 20, PeakBytes: 1 << 18, IntFragBP: 900, ExtFragBP: 0},
			"tree/amplify/depth1/threads4/procs8": {Footprint: 2 << 20, PeakBytes: 1 << 19, IntFragBP: 1200, ExtFragBP: 300},
		},
	}
}

// clone deep-copies a report's maps so tests can seed drift.
func clone(r *Report) *Report {
	c := *r
	c.Makespans = make(map[string]int64, len(r.Makespans))
	for k, v := range r.Makespans {
		c.Makespans[k] = v
	}
	c.Heap = make(map[string]HeapCell, len(r.Heap))
	for k, v := range r.Heap {
		c.Heap[k] = v
	}
	return &c
}

// TestCompareDetectsSeededRegression is the acceptance test for the
// diffing satellite: seed a makespan regression, a footprint
// regression and a fragmentation regression and check each is caught,
// classified and fails the comparison.
func TestCompareDetectsSeededRegression(t *testing.T) {
	base := baselineReport()
	cur := clone(base)
	cur.Makespans["tree/serial/depth1/threads1/procs8"] = 10_500 // +5%
	cell := cur.Heap["tree/amplify/depth1/threads4/procs8"]
	cell.Footprint *= 2   // +100%
	cell.ExtFragBP += 250 // +250bp
	cur.Heap["tree/amplify/depth1/threads4/procs8"] = cell

	cmp, err := Compare(base, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Regressed() {
		t.Fatal("seeded regressions not detected")
	}
	if len(cmp.Regressions) != 3 {
		t.Fatalf("regressions = %v, want 3", cmp.Regressions)
	}
	text := cmp.Format()
	for _, want := range []string{
		"makespan tree/serial/depth1/threads1/procs8: 10000 -> 10500 (+5.00%)",
		"footprint tree/amplify/depth1/threads4/procs8",
		"ext_frag_bp tree/amplify/depth1/threads4/procs8: 300 -> 550 (+250bp)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("diff missing %q:\n%s", want, text)
		}
	}

	// A threshold above every seeded drift turns them into notes.
	cmp, err = Compare(base, cur, 110)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Regressed() {
		t.Fatalf("threshold 110%% still regressed: %v", cmp.Regressions)
	}
	if len(cmp.Notes) != 3 {
		t.Errorf("notes = %v, want the 3 sub-threshold drifts", cmp.Notes)
	}
}

// TestCompareIdenticalAndImproved: identical reports diff clean, and
// lower numbers are improvements, never regressions.
func TestCompareIdenticalAndImproved(t *testing.T) {
	base := baselineReport()
	cmp, err := Compare(base, clone(base), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Regressed() || len(cmp.Improvements) != 0 || cmp.Common != 3 {
		t.Fatalf("identical reports: %+v", cmp)
	}

	cur := clone(base)
	cur.Makespans["bgw/smartheap/amplify/threads2"] = 40_000
	cell := cur.Heap["tree/serial/depth1/threads1/procs8"]
	cell.Footprint /= 2
	cur.Heap["tree/serial/depth1/threads1/procs8"] = cell
	cmp, err = Compare(base, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Regressed() {
		t.Fatalf("improvements flagged as regressions: %v", cmp.Regressions)
	}
	if len(cmp.Improvements) != 2 {
		t.Errorf("improvements = %v, want 2", cmp.Improvements)
	}
}

// TestCompareToleratesOldSchemaAndSubset: a v2 baseline (no heap map)
// and a quick run covering a subset of cells both diff cleanly over
// the overlap; disjoint or alien reports are errors.
func TestCompareToleratesOldSchemaAndSubset(t *testing.T) {
	base := baselineReport()
	base.Schema = "amplify-bench/2"
	base.Heap = nil
	cur := clone(baselineReport())
	delete(cur.Makespans, "bgw/smartheap/amplify/threads2")
	cur.Makespans["pipe/smartheap/amplifytrue/stealtrue/workers4"] = 777

	cmp, err := Compare(base, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Regressed() {
		t.Fatalf("schema/subset tolerance failed: %v", cmp.Regressions)
	}
	if cmp.Common != 2 || cmp.OnlyOld != 1 || cmp.OnlyNew != 1 {
		t.Errorf("overlap = %d common / %d old-only / %d new-only, want 2/1/1",
			cmp.Common, cmp.OnlyOld, cmp.OnlyNew)
	}
	if !strings.Contains(cmp.Format(), "schema skew") {
		t.Error("schema skew not noted")
	}

	if _, err := Compare(&Report{Schema: "something-else/1"}, cur, 0); err == nil {
		t.Error("alien schema accepted")
	}
	if _, err := Compare(base, cur, -1); err == nil {
		t.Error("negative threshold accepted")
	}

	disjoint := &Report{Schema: ReportSchema, Makespans: map[string]int64{"other/cell": 1}}
	cmp, err = Compare(base, disjoint, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Regressed() {
		t.Error("disjoint reports passed vacuously")
	}
}

// TestCompareZeroBaseline: a metric appearing from a zero baseline
// exceeds any relative threshold rather than dividing by zero.
func TestCompareZeroBaseline(t *testing.T) {
	base := &Report{Schema: ReportSchema, Makespans: map[string]int64{"cell/a": 0}}
	cur := &Report{Schema: ReportSchema, Makespans: map[string]int64{"cell/a": 5}}
	cmp, err := Compare(base, cur, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Regressed() {
		t.Error("growth from zero baseline not flagged")
	}
}
