package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportHeapArtifacts checks every heap artifact exists, parses,
// and tells the paper's memory story: the amplified run retains pool
// structures the serial run does not, and timelines advance in virtual
// time.
func TestExportHeapArtifacts(t *testing.T) {
	r := microRunner()
	// heap-summary.json summarizes the experiment cells computed so
	// far (like ExportTraces' metrics.json); warm one family first, as
	// the CLI does before exporting.
	if err := r.Precompute([]string{"fig4"}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := r.ExportHeap(dir); err != nil {
		t.Fatal(err)
	}
	read := func(name string) []byte {
		t.Helper()
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	for _, strategy := range []string{"serial", "ptmalloc", "amplify"} {
		jl := read("heap-timeline-" + strategy + ".jsonl")
		lines := bytes.Split(bytes.TrimSpace(jl), []byte("\n"))
		if len(lines) < 2 {
			t.Fatalf("%s timeline has %d samples, want several", strategy, len(lines))
		}
		var prev int64 = -1
		for _, line := range lines {
			if !json.Valid(line) {
				t.Fatalf("invalid JSONL line: %s", line)
			}
			var s struct {
				Now       int64 `json:"now"`
				Footprint int64 `json:"footprint"`
			}
			if err := json.Unmarshal(line, &s); err != nil {
				t.Fatal(err)
			}
			if s.Now < prev {
				t.Fatalf("%s timeline goes backwards: %d after %d", strategy, s.Now, prev)
			}
			prev = s.Now
		}

		csv := read("heap-timeline-" + strategy + ".csv")
		header := string(bytes.SplitN(csv, []byte("\n"), 2)[0])
		for _, col := range []string{"now", "footprint", "int_frag_bp", "ext_frag_bp", "pool_retained"} {
			if !strings.Contains(header, col) {
				t.Errorf("%s CSV header missing %s: %s", strategy, col, header)
			}
		}
		if got := bytes.Count(csv, []byte("\n")); got != len(lines)+1 {
			t.Errorf("%s: CSV rows %d != JSONL rows %d + header", strategy, got, len(lines))
		}
	}

	// Amplify retains structures in pools; serial has no pools at all.
	ampLast := lastJSONLine(t, read("heap-timeline-amplify.jsonl"))
	serLast := lastJSONLine(t, read("heap-timeline-serial.jsonl"))
	if ampLast["pool_hits"] == 0 || ampLast["pool_hit_rate_bp"] == 0 {
		t.Errorf("amplify timeline shows no pool reuse: %v", ampLast)
	}
	if serLast["pool_hits"] != 0 || serLast["pool_retained"] != 0 {
		t.Errorf("serial timeline shows pool activity: %v", serLast)
	}

	folded := string(read("heap-sites-folded.txt"))
	if !strings.Contains(folded, "@") || !strings.Contains(folded, ";") {
		t.Errorf("folded site stacks malformed:\n%s", folded)
	}
	if !strings.Contains(string(read("heap-sites.txt")), "allocation sites") {
		t.Error("heap-sites.txt missing table header")
	}

	summary := read("heap-summary.json")
	var cells map[string]HeapCell
	if err := json.Unmarshal(summary, &cells); err != nil {
		t.Fatalf("heap-summary.json: %v", err)
	}
	if len(cells) == 0 {
		t.Error("heap summary is empty")
	}
}

func lastJSONLine(t *testing.T, b []byte) map[string]int64 {
	t.Helper()
	lines := bytes.Split(bytes.TrimSpace(b), []byte("\n"))
	var m map[string]int64
	if err := json.Unmarshal(lines[len(lines)-1], &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestExportHeapDeterministicAcrossJobs is the -j1/-j8 byte-identity
// acceptance test for the heap artifacts.
func TestExportHeapDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the timeline workloads twice")
	}
	names := []string{"fig4"}
	seq := microRunner()
	seq.Jobs = 1
	if err := seq.Precompute(names); err != nil {
		t.Fatal(err)
	}
	par := microRunner()
	par.Jobs = 8
	if err := par.Precompute(names); err != nil {
		t.Fatal(err)
	}
	seqDir, parDir := t.TempDir(), t.TempDir()
	if err := seq.ExportHeap(seqDir); err != nil {
		t.Fatal(err)
	}
	if err := par.ExportHeap(parDir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(seqDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 9 { // 3 strategies x 2 formats + sites folded/table + summary
		t.Fatalf("exported %d artifacts, want 9", len(entries))
	}
	for _, e := range entries {
		a, err := os.ReadFile(filepath.Join(seqDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(parDir, e.Name()))
		if err != nil {
			t.Fatalf("artifact %s missing from -j8 export: %v", e.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between -j1 and -j8 runners", e.Name())
		}
	}
}

// TestReportHeapSection: schema v3 reports carry per-cell heap data
// and per-experiment headlines consistent with it.
func TestReportHeapSection(t *testing.T) {
	r := microRunner()
	names := []string{"fig4"}
	if err := r.Precompute(names); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Report(names)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "amplify-bench/7" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Heap) == 0 {
		t.Fatal("report has no heap section")
	}
	for key, cell := range rep.Heap {
		if cell.Footprint <= 0 {
			t.Errorf("cell %s footprint = %d", key, cell.Footprint)
		}
		if cell.IntFragBP < 0 || cell.IntFragBP > 10000 || cell.ExtFragBP < 0 || cell.ExtFragBP > 10000 {
			t.Errorf("cell %s fragmentation out of range: %+v", key, cell)
		}
	}
	h := rep.Experiments[0].Heap
	if h == nil {
		t.Fatal("fig4 has no heap headline")
	}
	if h.MeanFootprint <= 0 || h.PeakFootprint < h.MeanFootprint {
		t.Errorf("headline = %+v", h)
	}
	var maxFoot int64
	for _, key := range r.cellKeys("fig4") {
		if c, ok := rep.Heap[key]; ok && c.Footprint > maxFoot {
			maxFoot = c.Footprint
		}
	}
	if h.PeakFootprint != maxFoot {
		t.Errorf("peak footprint %d != max over cells %d", h.PeakFootprint, maxFoot)
	}
}
