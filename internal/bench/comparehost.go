package bench

import (
	"fmt"
	"sort"
	"strings"
)

// CompareHost diffs a fresh host-benchmark report against a committed
// baseline (BENCH_host.json). Unlike Compare, everything here is a
// host wall-clock measurement — noisy by construction — so the
// threshold is expected to be generous (tens of percent, not zero):
// the gate exists to catch order-of-magnitude engine regressions, not
// single-digit drift. NsPerOp and AllocsPerOp are compared per
// benchmark name; lower is better for both. Ratios are informational
// only (they are quotients of the compared numbers). Benchmarks
// present in only one report are tolerated and counted, like cells in
// Compare.
func CompareHost(baseline, current *HostReport, thresholdPct float64) (*Comparison, error) {
	for _, r := range []*HostReport{baseline, current} {
		if !strings.HasPrefix(r.Schema, "amplify-hostbench/") {
			return nil, fmt.Errorf("bench: unknown host report schema %q", r.Schema)
		}
	}
	if thresholdPct < 0 {
		return nil, fmt.Errorf("bench: negative threshold %g", thresholdPct)
	}
	c := &Comparison{Threshold: thresholdPct}
	if baseline.Schema != current.Schema {
		c.Notes = append(c.Notes, fmt.Sprintf("schema skew: baseline %s, current %s",
			baseline.Schema, current.Schema))
	}
	if baseline.GoVersion != current.GoVersion {
		c.Notes = append(c.Notes, fmt.Sprintf("go version skew: baseline %s, current %s",
			baseline.GoVersion, current.GoVersion))
	}

	old := hostBenchByName(baseline)
	new := hostBenchByName(current)
	for _, name := range sortedHostNames(old, new) {
		ob, inOld := old[name]
		nb, inNew := new[name]
		switch {
		case !inNew:
			c.OnlyOld++
			continue
		case !inOld:
			c.OnlyNew++
			continue
		}
		c.Common++
		c.compareValue("ns_per_op", name, ob.NsPerOp, nb.NsPerOp, false)
		c.compareValue("allocs_per_op", name, ob.AllocsPerOp, nb.AllocsPerOp, false)
	}
	if c.Common == 0 {
		c.Regressions = append(c.Regressions,
			"no overlapping benchmarks: the baseline and the report measure disjoint suites")
	}
	return c, nil
}

func hostBenchByName(r *HostReport) map[string]HostBenchmark {
	m := make(map[string]HostBenchmark, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		m[b.Name] = b
	}
	return m
}

func sortedHostNames(a, b map[string]HostBenchmark) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var names []string
	for n := range a {
		seen[n] = true
		names = append(names, n)
	}
	for n := range b {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}
