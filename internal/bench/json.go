package bench

import (
	"runtime"
	"strings"
	"time"

	"amplify/internal/alloc"
	"amplify/internal/bgw"
	"amplify/internal/workload"
)

// ReportSchema identifies the BENCH.json layout; bump on incompatible
// changes so trajectory tooling can dispatch on it. Version 2 added
// the unified metrics registry snapshot (Metrics); version 3 added the
// per-cell heap map (Heap) and per-experiment heap headlines; version
// 4 adds the escape-analysis verdict section (Escape) stamped by the
// escape experiment; version 5 adds the datacenter-scale grid cells
// (scale/...) to Makespans; version 6 adds the contention-scaling
// grid cells (contend/...) and the sim.atomic.* counters to Metrics;
// version 7 adds the trace-replay grid cells (replay/<corpus>/<alloc>)
// from the committed alloctrace corpora; the simulated makespans of
// pre-existing cells are unchanged from version 1.
const ReportSchema = "amplify-bench/7"

// Report is the machine-readable record of one amplifybench
// invocation: what ran, how long the host took, and every simulated
// makespan the experiments measured. Committed snapshots of this
// struct (BENCH_baseline.json) form the bench trajectory of the repo.
type Report struct {
	Schema      string             `json:"schema"`
	Quick       bool               `json:"quick"`
	VMNoOpt     bool               `json:"vm_no_opt"`
	Jobs        int                `json:"jobs"`
	HostCPUs    int                `json:"host_cpus"`
	WallSeconds float64            `json:"wall_seconds"`
	Experiments []ExperimentReport `json:"experiments"`
	// Makespans maps every memoized simulation cell to its virtual-time
	// makespan. These are deterministic: they must not change across
	// hosts, -j values, or reruns — only across semantic changes to the
	// simulator or workloads.
	Makespans map[string]int64 `json:"makespans"`
	// Metrics is the unified observability registry: aggregate
	// simulator, allocator and pool counters summed over every memo
	// cell the experiments computed (see Runner.Metrics). Deterministic
	// for a given experiment set, like Makespans.
	Metrics map[string]int64 `json:"metrics"`
	// Heap maps every memoized cell to its memory-consumption numbers:
	// final footprint, peak live bytes, and the allocator's internal/
	// external fragmentation in basis points. Integer-only and
	// deterministic, like Makespans — -compare diffs these too.
	Heap map[string]HeapCell `json:"heap,omitempty"`
	// Escape is the interprocedural analysis's per-class/per-site
	// verdict section over the committed corpus, stamped when the
	// escape experiment runs (schema v4). Deterministic: it depends
	// only on the analyzer and the corpus sources.
	Escape []EscapeWorkloadReport `json:"escape,omitempty"`
}

// HeapCell is one simulation's memory-consumption record.
type HeapCell struct {
	Footprint int64 `json:"footprint"`
	PeakBytes int64 `json:"peak_bytes"`
	IntFragBP int64 `json:"int_frag_bp"`
	ExtFragBP int64 `json:"ext_frag_bp"`
}

// HeapHeadline condenses one experiment's memory consumption: the
// peak and mean final footprint over its cells, and the worst
// fragmentation seen (basis points). MeanFootprint uses integer
// division so reports stay bit-stable across hosts.
type HeapHeadline struct {
	PeakFootprint  int64 `json:"peak_footprint"`
	MeanFootprint  int64 `json:"mean_footprint"`
	WorstIntFragBP int64 `json:"worst_int_frag_bp"`
	WorstExtFragBP int64 `json:"worst_ext_frag_bp"`
}

// ExperimentReport records one experiment: host wall-clock spent
// assembling it, and — for figures — the plotted series plus the
// headline speedup.
type ExperimentReport struct {
	Name        string         `json:"name"`
	WallSeconds float64        `json:"wall_seconds"`
	X           []int          `json:"x,omitempty"`
	Series      []SeriesReport `json:"series,omitempty"`
	Headline    *Headline      `json:"headline,omitempty"`
	// EngineSpeedup (endtoend only) is the host wall-clock ratio of the
	// VM with its bytecode optimizer off vs on — host-side, so excluded
	// from determinism checks, which diff only Makespans.
	EngineSpeedup float64 `json:"engine_speedup,omitempty"`
	// Heap summarizes the memory consumption of the cells this
	// experiment reads (schema v3).
	Heap *HeapHeadline `json:"heap,omitempty"`
}

// SeriesReport is one plotted line of a figure.
type SeriesReport struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Headline is a figure's best speedup: which series reached it and at
// which x value.
type Headline struct {
	Series  string  `json:"series"`
	X       int     `json:"x"`
	Speedup float64 `json:"speedup"`
}

// Report runs the named experiments and assembles their
// machine-readable record. Cells already warmed by Precompute are
// recalled from the memo, so per-experiment wall times then measure
// assembly only; WallSeconds of the whole report is left for the
// caller to stamp (it should cover Precompute too).
func (r *Runner) Report(names []string) (*Report, error) {
	rep := &Report{
		Schema:   ReportSchema,
		Quick:    r.quick,
		VMNoOpt:  r.VMNoOpt,
		Jobs:     r.Jobs,
		HostCPUs: runtime.NumCPU(),
	}
	for _, name := range names {
		start := time.Now()
		er := ExperimentReport{Name: name}
		if strings.HasPrefix(name, "fig") || name == "endtoend" {
			f, err := r.Figure(name)
			if err != nil {
				return nil, err
			}
			er.X = f.X
			for _, s := range f.Series {
				er.Series = append(er.Series, SeriesReport{Name: s.Name, Values: s.Values})
			}
			er.Headline = headlineOf(f)
			if name == "endtoend" {
				if er.EngineSpeedup, err = r.EngineSpeedup(); err != nil {
					return nil, err
				}
			}
		} else if _, err := r.Run(name); err != nil {
			return nil, err
		}
		if name == "escape" {
			verdicts, err := r.EscapeVerdicts()
			if err != nil {
				return nil, err
			}
			rep.Escape = verdicts
		}
		er.WallSeconds = time.Since(start).Seconds()
		rep.Experiments = append(rep.Experiments, er)
	}
	rep.Makespans = r.Makespans()
	rep.Metrics = r.Metrics()
	rep.Heap = r.HeapCells()
	// Headlines need the full heap map, so they are stamped after the
	// experiment loop: each experiment summarizes the cells it reads.
	for i := range rep.Experiments {
		rep.Experiments[i].Heap = heapHeadlineOf(r.cellKeys(rep.Experiments[i].Name), rep.Heap)
	}
	return rep, nil
}

// heapHeadlineOf condenses the named cells' heap records, or nil when
// none of the keys carry heap data.
func heapHeadlineOf(keys []string, cells map[string]HeapCell) *HeapHeadline {
	var h *HeapHeadline
	var sum, n int64
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		c, ok := cells[k]
		if !ok || seen[k] {
			continue
		}
		seen[k] = true
		if h == nil {
			h = &HeapHeadline{}
		}
		if c.Footprint > h.PeakFootprint {
			h.PeakFootprint = c.Footprint
		}
		if c.IntFragBP > h.WorstIntFragBP {
			h.WorstIntFragBP = c.IntFragBP
		}
		if c.ExtFragBP > h.WorstExtFragBP {
			h.WorstExtFragBP = c.ExtFragBP
		}
		sum += c.Footprint
		n++
	}
	if h != nil {
		h.MeanFootprint = sum / n
	}
	return h
}

// headlineOf picks the figure's best speedup across all series.
func headlineOf(f *Figure) *Headline {
	var h *Headline
	for _, s := range f.Series {
		for i, v := range s.Values {
			if h == nil || v > h.Speedup {
				h = &Headline{Series: s.Name, X: f.X[i], Speedup: v}
			}
		}
	}
	return h
}

// HeapCells extracts the memory-consumption record of every completed
// memo cell, keyed like Makespans.
func (r *Runner) HeapCells() map[string]HeapCell {
	m := make(map[string]HeapCell)
	r.cells.completed(func(key string, val any) {
		switch v := val.(type) {
		case workload.Result:
			m[key] = heapCellOf(v.Footprint, v.Alloc.PeakBytes, v.Heap)
		case workload.ChurnResult:
			m[key] = heapCellOf(v.Footprint, v.Alloc.PeakBytes, v.Heap)
		case workload.ReplayResult:
			m[key] = heapCellOf(v.Footprint, v.Alloc.PeakBytes, v.Heap)
		case bgw.Result:
			m[key] = heapCellOf(v.Footprint, v.Alloc.PeakBytes, v.Heap)
		case bgw.PipelineResult:
			m[key] = heapCellOf(v.Footprint, v.Alloc.PeakBytes, v.Heap)
		case e2eResult:
			m[key] = HeapCell{Footprint: v.Footprint, PeakBytes: v.PeakBytes,
				IntFragBP: v.IntFragBP, ExtFragBP: v.ExtFragBP}
		case scaleCell:
			m[key] = heapCellOf(v.Res.Footprint, v.Res.Alloc.PeakBytes, v.Res.Heap)
		}
	})
	return m
}

func heapCellOf(footprint, peak int64, hi alloc.HeapInfo) HeapCell {
	return HeapCell{
		Footprint: footprint,
		PeakBytes: peak,
		IntFragBP: fragBP(hi.ReqBytes, hi.GrantedBytes),
		ExtFragBP: fragBP(hi.LargestFree, hi.FreeBytes),
	}
}

// fragBP is (1 - part/whole) in basis points; zero when whole is zero.
func fragBP(part, whole int64) int64 {
	if whole == 0 {
		return 0
	}
	return 10000 - part*10000/whole
}

// Makespans extracts the simulated makespan of every completed memo
// cell, keyed by cell name. encoding/json emits map keys sorted, so
// the serialized form is stable for diffing across runs.
func (r *Runner) Makespans() map[string]int64 {
	m := make(map[string]int64)
	r.cells.completed(func(key string, val any) {
		switch v := val.(type) {
		case workload.Result:
			m[key] = v.Makespan
		case workload.ChurnResult:
			m[key] = v.Makespan
		case workload.ReplayResult:
			m[key] = v.Makespan
		case bgw.Result:
			m[key] = v.Makespan
		case bgw.PipelineResult:
			m[key] = v.Makespan
		case e2eResult:
			m[key] = v.Makespan
		case scaleCell:
			m[key] = v.Res.Makespan
		}
	})
	return m
}
