package bench

import (
	"runtime"
	"strings"
	"time"

	"amplify/internal/bgw"
	"amplify/internal/workload"
)

// ReportSchema identifies the BENCH.json layout; bump on incompatible
// changes so trajectory tooling can dispatch on it. Version 2 added
// the unified metrics registry snapshot (Metrics); the simulated
// makespans are unchanged from version 1.
const ReportSchema = "amplify-bench/2"

// Report is the machine-readable record of one amplifybench
// invocation: what ran, how long the host took, and every simulated
// makespan the experiments measured. Committed snapshots of this
// struct (BENCH_baseline.json) form the bench trajectory of the repo.
type Report struct {
	Schema      string             `json:"schema"`
	Quick       bool               `json:"quick"`
	VMNoOpt     bool               `json:"vm_no_opt"`
	Jobs        int                `json:"jobs"`
	HostCPUs    int                `json:"host_cpus"`
	WallSeconds float64            `json:"wall_seconds"`
	Experiments []ExperimentReport `json:"experiments"`
	// Makespans maps every memoized simulation cell to its virtual-time
	// makespan. These are deterministic: they must not change across
	// hosts, -j values, or reruns — only across semantic changes to the
	// simulator or workloads.
	Makespans map[string]int64 `json:"makespans"`
	// Metrics is the unified observability registry: aggregate
	// simulator, allocator and pool counters summed over every memo
	// cell the experiments computed (see Runner.Metrics). Deterministic
	// for a given experiment set, like Makespans.
	Metrics map[string]int64 `json:"metrics"`
}

// ExperimentReport records one experiment: host wall-clock spent
// assembling it, and — for figures — the plotted series plus the
// headline speedup.
type ExperimentReport struct {
	Name        string         `json:"name"`
	WallSeconds float64        `json:"wall_seconds"`
	X           []int          `json:"x,omitempty"`
	Series      []SeriesReport `json:"series,omitempty"`
	Headline    *Headline      `json:"headline,omitempty"`
	// EngineSpeedup (endtoend only) is the host wall-clock ratio of the
	// VM with its bytecode optimizer off vs on — host-side, so excluded
	// from determinism checks, which diff only Makespans.
	EngineSpeedup float64 `json:"engine_speedup,omitempty"`
}

// SeriesReport is one plotted line of a figure.
type SeriesReport struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Headline is a figure's best speedup: which series reached it and at
// which x value.
type Headline struct {
	Series  string  `json:"series"`
	X       int     `json:"x"`
	Speedup float64 `json:"speedup"`
}

// Report runs the named experiments and assembles their
// machine-readable record. Cells already warmed by Precompute are
// recalled from the memo, so per-experiment wall times then measure
// assembly only; WallSeconds of the whole report is left for the
// caller to stamp (it should cover Precompute too).
func (r *Runner) Report(names []string) (*Report, error) {
	rep := &Report{
		Schema:   ReportSchema,
		Quick:    r.quick,
		VMNoOpt:  r.VMNoOpt,
		Jobs:     r.Jobs,
		HostCPUs: runtime.NumCPU(),
	}
	for _, name := range names {
		start := time.Now()
		er := ExperimentReport{Name: name}
		if strings.HasPrefix(name, "fig") || name == "endtoend" {
			f, err := r.Figure(name)
			if err != nil {
				return nil, err
			}
			er.X = f.X
			for _, s := range f.Series {
				er.Series = append(er.Series, SeriesReport{Name: s.Name, Values: s.Values})
			}
			er.Headline = headlineOf(f)
			if name == "endtoend" {
				if er.EngineSpeedup, err = r.EngineSpeedup(); err != nil {
					return nil, err
				}
			}
		} else if _, err := r.Run(name); err != nil {
			return nil, err
		}
		er.WallSeconds = time.Since(start).Seconds()
		rep.Experiments = append(rep.Experiments, er)
	}
	rep.Makespans = r.Makespans()
	rep.Metrics = r.Metrics()
	return rep, nil
}

// headlineOf picks the figure's best speedup across all series.
func headlineOf(f *Figure) *Headline {
	var h *Headline
	for _, s := range f.Series {
		for i, v := range s.Values {
			if h == nil || v > h.Speedup {
				h = &Headline{Series: s.Name, X: f.X[i], Speedup: v}
			}
		}
	}
	return h
}

// Makespans extracts the simulated makespan of every completed memo
// cell, keyed by cell name. encoding/json emits map keys sorted, so
// the serialized form is stable for diffing across runs.
func (r *Runner) Makespans() map[string]int64 {
	m := make(map[string]int64)
	r.cells.completed(func(key string, val any) {
		switch v := val.(type) {
		case workload.Result:
			m[key] = v.Makespan
		case bgw.Result:
			m[key] = v.Makespan
		case bgw.PipelineResult:
			m[key] = v.Makespan
		case e2eResult:
			m[key] = v.Makespan
		}
	})
	return m
}
