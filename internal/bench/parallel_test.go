package bench

import (
	"strings"
	"sync"
	"testing"
)

// microRunner is smaller still than tinyRunner: just enough work to
// exercise every cell family.
func microRunner() *Runner {
	r := NewRunner(true)
	r.Trees = 200
	r.CDRs = 200
	r.Threads = []int{1, 2}
	r.WideThreads = []int{1, 4}
	r.BGwThreads = []int{1, 2}
	return r
}

// TestParallelFiguresMatchSequential is the harness's equivalence
// regression: the rendered output of every experiment family must be
// byte-identical whether the memo was warmed by one worker or by
// eight. One experiment per cell family keeps the cost bounded; the
// assembly code is shared by the rest.
func TestParallelFiguresMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment family twice")
	}
	names := []string{"fig4", "fig10", "fig11", "memory", "pipeline", "sensitivity", "endtoend"}

	seq := microRunner()
	seq.Jobs = 1
	par := microRunner()
	par.Jobs = 8
	if err := par.Precompute(names); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		want, err := seq.Run(name)
		if err != nil {
			t.Fatalf("sequential %s: %v", name, err)
		}
		got, err := par.Run(name)
		if err != nil {
			t.Fatalf("parallel %s: %v", name, err)
		}
		if want != got {
			t.Errorf("%s differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", name, want, got)
		}
	}
}

// TestConcurrentDirectRunnerCalls hammers the memo from goroutines
// that bypass the worker pool entirely — callers using Runner as a
// library. Under -race this proves the lazy-init singleflight map and
// the simulators' statistics (lock counters, failed trylocks) are
// safe to read concurrently. Everyone asking for the same cell must
// get the same measurement.
func TestConcurrentDirectRunnerCalls(t *testing.T) {
	r := microRunner()
	const callers = 8
	makespans := make([]int64, callers)
	tryLocks := make([]int64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.run("amplify", 1, 2)
			if err != nil {
				t.Error(err)
				return
			}
			makespans[i] = res.Makespan
			tryLocks[i] = res.FailedTryLocks
			if _, err := r.runBGw("smartheap", true, false, 2); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if makespans[i] != makespans[0] || tryLocks[i] != tryLocks[0] {
			t.Fatalf("caller %d saw (makespan %d, trylocks %d), caller 0 saw (%d, %d)",
				i, makespans[i], tryLocks[i], makespans[0], tryLocks[0])
		}
	}
	if n := r.cells.len(); n != 2 {
		t.Errorf("memo has %d cells, want 2 (singleflight collapsed the callers)", n)
	}
}

func TestReport(t *testing.T) {
	r := microRunner()
	r.Jobs = 2
	names := []string{"table1", "fig4"}
	if err := r.Precompute(names); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Report(names)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Experiments) != 2 {
		t.Fatalf("experiments = %d", len(rep.Experiments))
	}
	fig4 := rep.Experiments[1]
	if fig4.Headline == nil || fig4.Headline.Speedup <= 0 {
		t.Error("fig4 missing headline speedup")
	}
	if len(fig4.Series) != 3 {
		t.Errorf("fig4 series = %d, want 3", len(fig4.Series))
	}
	if len(rep.Makespans) == 0 {
		t.Error("no makespans recorded")
	}
	for k, v := range rep.Makespans {
		if v <= 0 {
			t.Errorf("cell %s has non-positive makespan %d", k, v)
		}
		if !strings.ContainsRune(k, '/') {
			t.Errorf("cell key %q not namespaced", k)
		}
	}
	if len(rep.Metrics) == 0 {
		t.Fatal("no metrics recorded")
	}
	for _, name := range []string{"sim.lock.acquires", "sim.cache.misses", "alloc.allocs", "cells.tree"} {
		if rep.Metrics[name] <= 0 {
			t.Errorf("metric %s = %d, want > 0", name, rep.Metrics[name])
		}
	}
}
