package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"amplify/internal/workload"
)

// seededReports fabricates a baseline/current pair whose only delta is
// a 20% makespan regression on the quick-mode contend/serial/p8/
// threads64 cell — the current side carries the cell's REAL simulated
// makespan, so the explain probe reproduces it exactly.
func seededReports(t *testing.T) (*Report, *Report, int64) {
	t.Helper()
	res, err := workload.RunChurn("serial", workload.ChurnConfig{
		Threads: 64, OpsPerThread: contendOpsQuick, Size: contendSize, Processors: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	const cell = "contend/serial/p8/threads64"
	old := &Report{
		Schema:    ReportSchema,
		Quick:     true,
		Makespans: map[string]int64{cell: res.Makespan * 8 / 10},
		Metrics:   map[string]int64{"sim.lock.wait_cycles": 1000, "sim.lock.contended": 10},
	}
	cur := &Report{
		Schema:    ReportSchema,
		Quick:     true,
		Makespans: map[string]int64{cell: res.Makespan},
		Metrics:   map[string]int64{"sim.lock.wait_cycles": 9000, "sim.lock.contended": 80},
	}
	return old, cur, res.Makespan
}

func TestExplainNamesTheLock(t *testing.T) {
	old, cur, makespan := seededReports(t)
	ex, err := Explain(old, cur, ExplainOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Schema != ExplainSchema {
		t.Errorf("schema = %q", ex.Schema)
	}
	if len(ex.Cells) != 1 {
		t.Fatalf("cells = %+v", ex.Cells)
	}
	c := ex.Cells[0]
	if c.Cell != "contend/serial/p8/threads64" || c.Metric != "makespan" || c.New != makespan {
		t.Errorf("cell = %+v", c)
	}
	if c.Note != "" {
		t.Errorf("unexpected note (probe should reproduce the report makespan): %q", c.Note)
	}
	// The serial allocator's global mutex must appear in the top-3
	// attributions: 64 threads hammering one lock on 8 processors is
	// wait-dominated by construction.
	found := false
	for i, a := range c.Attributions {
		if i >= 3 {
			break
		}
		if a.Kind == "lock" && a.Name == "serial.global" {
			found = true
			if a.ShareBP <= 0 || a.Value <= 0 {
				t.Errorf("serial.global attribution carries no weight: %+v", a)
			}
		}
	}
	if !found {
		t.Errorf("serial.global not in top-3 attributions: %+v", c.Attributions)
	}
	// The report-level corroboration ranks the wait-cycle counter on top.
	if len(ex.Metrics) == 0 || ex.Metrics[0].Key != "sim.lock.wait_cycles" {
		t.Errorf("metric deltas = %+v", ex.Metrics)
	}
	// The rendered report names the lock too.
	text := ex.Format()
	if !strings.Contains(text, "serial.global") || !strings.Contains(text, "makespan contend/serial/p8/threads64") {
		t.Errorf("Format misses the culprit:\n%s", text)
	}
}

// TestExplainDeterministicAcrossJobs: the attribution report must be
// byte-identical whether probes run sequentially or on 8 host workers.
func TestExplainDeterministicAcrossJobs(t *testing.T) {
	old, cur, _ := seededReports(t)
	// A second regressed cell makes the probe pool actually parallel.
	old.Makespans["tree/serial/depth1/threads2/procs8"] = 1
	cur.Makespans["tree/serial/depth1/threads2/procs8"] = 100

	var texts [2]string
	var jsons [2][]byte
	for i, jobs := range []int{1, 8} {
		ex, err := Explain(old, cur, ExplainOptions{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		texts[i] = ex.Format()
		j, err := json.MarshalIndent(ex, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		jsons[i] = j
	}
	if texts[0] != texts[1] {
		t.Errorf("text report differs between -j1 and -j8:\n--- j1 ---\n%s--- j8 ---\n%s", texts[0], texts[1])
	}
	if !bytes.Equal(jsons[0], jsons[1]) {
		t.Error("JSON report differs between -j1 and -j8")
	}
}

func TestExplainCleanAndUnknownCells(t *testing.T) {
	// Identical reports: nothing to explain, no probes run.
	same := &Report{Schema: ReportSchema, Quick: true,
		Makespans: map[string]int64{"contend/serial/p8/threads64": 500}}
	ex, err := Explain(same, same, ExplainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Cells) != 0 {
		t.Errorf("clean diff produced cells: %+v", ex.Cells)
	}
	if !strings.Contains(ex.Format(), "no regressions to explain") {
		t.Errorf("clean Format:\n%s", ex.Format())
	}

	// A cell family without a probe path is noted, never an error.
	old := &Report{Schema: ReportSchema, Quick: true,
		Makespans: map[string]int64{"bgw/serial/amplifyfalse/objectsfalse/threads2": 100}}
	cur := &Report{Schema: ReportSchema, Quick: true,
		Makespans: map[string]int64{"bgw/serial/amplifyfalse/objectsfalse/threads2": 200}}
	ex, err = Explain(old, cur, ExplainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Cells) != 1 || !strings.Contains(ex.Cells[0].Note, "no profiled re-run") {
		t.Errorf("bgw cell explanation = %+v", ex.Cells)
	}

	// Foreign schemas are an error, not an empty explanation.
	if _, err := Explain(&Report{Schema: "nonsense/1"}, cur, ExplainOptions{}); err == nil {
		t.Error("foreign schema accepted")
	}
}

// TestExplainFootprint: a fabricated footprint regression on a real
// cell gets heap-geometry attributions against the new footprint.
func TestExplainFootprint(t *testing.T) {
	res, err := workload.RunChurn("serial", workload.ChurnConfig{
		Threads: 8, OpsPerThread: contendOpsQuick, Size: contendSize, Processors: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	const cell = "contend/serial/p8/threads8"
	old := &Report{Schema: ReportSchema, Quick: true,
		Makespans: map[string]int64{cell: res.Makespan},
		Heap:      map[string]HeapCell{cell: {Footprint: res.Footprint / 2, PeakBytes: 1}}}
	cur := &Report{Schema: ReportSchema, Quick: true,
		Makespans: map[string]int64{cell: res.Makespan},
		Heap:      map[string]HeapCell{cell: {Footprint: res.Footprint, PeakBytes: 1}}}
	ex, err := Explain(old, cur, ExplainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Cells) != 1 || ex.Cells[0].Metric != "footprint" {
		t.Fatalf("cells = %+v", ex.Cells)
	}
	if len(ex.Cells[0].Attributions) == 0 {
		t.Fatal("footprint regression got no attributions")
	}
	for _, a := range ex.Cells[0].Attributions {
		if a.Kind != "heap" && a.Kind != "site" {
			t.Errorf("unexpected attribution kind for footprint: %+v", a)
		}
	}
}

// TestExplainSelectsWorstCells: with MaxCells 1 only the worst cell is
// probed; the other regression survives with a note instead of data.
func TestExplainSelectsWorstCells(t *testing.T) {
	old := &Report{Schema: ReportSchema, Quick: true, Makespans: map[string]int64{
		"bgw/a/amplifyfalse/objectsfalse/threads1": 100,
		"bgw/b/amplifyfalse/objectsfalse/threads1": 100,
	}}
	cur := &Report{Schema: ReportSchema, Quick: true, Makespans: map[string]int64{
		"bgw/a/amplifyfalse/objectsfalse/threads1": 300, // +200%
		"bgw/b/amplifyfalse/objectsfalse/threads1": 150, // +50%
	}}
	ex, err := Explain(old, cur, ExplainOptions{MaxCells: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Cells) != 2 {
		t.Fatalf("cells = %+v", ex.Cells)
	}
	if ex.Cells[0].Cell != "bgw/a/amplifyfalse/objectsfalse/threads1" || ex.Cells[0].SeverityBP != 20000 {
		t.Errorf("worst-first ordering broken: %+v", ex.Cells[0])
	}
	if !strings.Contains(ex.Cells[1].Note, "beyond MaxCells") {
		t.Errorf("dropped cell not noted: %+v", ex.Cells[1])
	}
	found := false
	for _, n := range ex.Notes {
		if strings.Contains(n, "were not re-run") {
			found = true
		}
	}
	if !found {
		t.Errorf("no coverage note about the dropped cell: %v", ex.Notes)
	}
}
