package bench

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestEscapeVerdictsClassifyEverySite pins the acceptance criterion
// that the analysis reaches a verdict for every `new` site in the
// committed corpus: the per-workload site lists must cover each
// textual `new` occurrence, and every verdict string must be one of
// the three lattice points.
func TestEscapeVerdictsClassifyEverySite(t *testing.T) {
	r := NewRunner(true)
	verdicts, err := r.EscapeVerdicts()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]EscapeWorkloadReport{}
	for _, wr := range verdicts {
		byName[wr.Workload] = wr
	}
	for _, w := range r.escWorkloads() {
		wr, ok := byName[w.name]
		if !ok {
			t.Fatalf("no verdict section for workload %s", w.name)
		}
		// The corpus sources contain no comments or identifiers with a
		// "new " prefix, so the textual count is the site count.
		if want := strings.Count(w.src, "new "); len(wr.Sites) != want {
			t.Errorf("%s: %d sites classified, source has %d `new` sites",
				w.name, len(wr.Sites), want)
		}
		for _, s := range wr.Sites {
			switch s.Verdict {
			case "non-escaping", "thread-local", "shared":
			default:
				t.Errorf("%s: site %s:%d has unknown verdict %q",
					w.name, s.Func, s.Line, s.Verdict)
			}
			if s.Class == "" || s.Func == "" {
				t.Errorf("%s: incomplete site record %+v", w.name, s)
			}
		}
	}
}

// TestEscapeReportJobsInvariant locks the -j determinism contract for
// the new experiment: the escape verdict section and every makespan it
// contributes must be byte-identical whether the cells were computed
// sequentially (-j1) or by eight workers (-j8).
func TestEscapeReportJobsInvariant(t *testing.T) {
	run := func(jobs int) (*Report, []byte) {
		r := NewRunner(true)
		r.Jobs = jobs
		if jobs > 1 {
			if err := r.Precompute([]string{"escape"}); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := r.Report([]string{"escape"})
		if err != nil {
			t.Fatal(err)
		}
		esc, err := json.Marshal(rep.Escape)
		if err != nil {
			t.Fatal(err)
		}
		return rep, esc
	}
	rep1, esc1 := run(1)
	rep8, esc8 := run(8)
	if string(esc1) != string(esc8) {
		t.Errorf("escape verdict JSON differs between -j1 and -j8:\n%s\nvs\n%s", esc1, esc8)
	}
	if !reflect.DeepEqual(rep1.Makespans, rep8.Makespans) {
		t.Errorf("escape makespans differ between -j1 and -j8: %v vs %v",
			rep1.Makespans, rep8.Makespans)
	}
	if len(rep1.Makespans) == 0 {
		t.Error("escape experiment produced no makespan cells")
	}
}
