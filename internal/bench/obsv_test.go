package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportTracesArtifacts checks every exported artifact exists, is
// valid where it claims to be JSON, and actually shows the paper's
// story: heap-lock wait slices under the global-lock allocator, (next
// to) none under the pools.
func TestExportTracesArtifacts(t *testing.T) {
	r := microRunner()
	dir := t.TempDir()
	if err := r.ExportTraces(dir); err != nil {
		t.Fatal(err)
	}

	read := func(name string) []byte {
		t.Helper()
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	serial := read("trace-serial.json")
	amp := read("trace-amplify.json")
	for name, b := range map[string][]byte{"trace-serial.json": serial, "trace-amplify.json": amp, "trace-ptmalloc.json": read("trace-ptmalloc.json")} {
		if !json.Valid(b) {
			t.Errorf("%s is not valid JSON", name)
		}
	}
	serialWaits := bytes.Count(serial, []byte(`"ph":"b"`))
	ampWaits := bytes.Count(amp, []byte(`"ph":"b"`))
	if serialWaits == 0 {
		t.Error("serial trace has no lock-wait slices")
	}
	if ampWaits*10 >= serialWaits {
		t.Errorf("amplify lock-wait slices %d not well below serial %d", ampWaits, serialWaits)
	}

	for _, line := range bytes.Split(bytes.TrimSpace(read("trace-serial.jsonl")), []byte("\n")) {
		if !json.Valid(line) {
			t.Fatalf("invalid JSONL line: %s", line)
		}
	}

	if locks := string(read("trace-locks.txt")); !strings.Contains(locks, "serial.global") {
		t.Errorf("lock profile does not mention the global heap lock:\n%s", locks)
	}

	folded := string(read("profile-folded.txt"))
	if !strings.Contains(folded, "main") || !strings.Contains(folded, "churn") {
		t.Errorf("folded profile missing MiniCC functions:\n%s", folded)
	}

	metrics := read("metrics.json")
	if !json.Valid(metrics) {
		t.Error("metrics.json is not valid JSON")
	}
}

// TestExportTracesDeterministicAcrossJobs extends the differential
// suite to the observability artifacts: a runner that warmed its memo
// with one worker and one that used eight must export byte-identical
// traces, profiles and metrics.
func TestExportTracesDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the trace workloads twice")
	}
	names := []string{"fig4"}
	seq := microRunner()
	seq.Jobs = 1
	if err := seq.Precompute(names); err != nil {
		t.Fatal(err)
	}
	par := microRunner()
	par.Jobs = 8
	if err := par.Precompute(names); err != nil {
		t.Fatal(err)
	}

	seqDir, parDir := t.TempDir(), t.TempDir()
	if err := seq.ExportTraces(seqDir); err != nil {
		t.Fatal(err)
	}
	if err := par.ExportTraces(parDir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(seqDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no artifacts exported")
	}
	for _, e := range entries {
		a, err := os.ReadFile(filepath.Join(seqDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(parDir, e.Name()))
		if err != nil {
			t.Fatalf("artifact %s missing from -j8 export: %v", e.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between -j1 and -j8 runners", e.Name())
		}
	}
}
