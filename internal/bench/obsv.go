package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"amplify/internal/bgw"
	"amplify/internal/core"
	"amplify/internal/obsv"
	"amplify/internal/sim"
	"amplify/internal/vm"
	"amplify/internal/workload"
)

// Metrics folds the aggregate counters of every completed memo cell
// into one sorted name → value map: the unified metrics view that goes
// into the Report (schema amplify-bench/2). Values are sums across
// cells, so they are deterministic for a given experiment set but say
// nothing about any single run — the per-cell resolution lives in
// Makespans and the trace exports.
func (r *Runner) Metrics() map[string]int64 {
	reg := obsv.NewRegistry()
	addSim := func(st sim.Stats) {
		reg.Add("sim.lock.acquires", st.LockAcquires)
		reg.Add("sim.lock.contended", st.LockContended)
		reg.Add("sim.lock.wait_cycles", st.LockWaitTime)
		reg.Add("sim.cache.hits", st.CacheHits)
		reg.Add("sim.cache.misses", st.CacheMisses)
		reg.Add("sim.cache.invalidations", st.CacheInvalidations)
		reg.Add("sim.cache.rfos", st.CacheRFOs)
		reg.Add("sim.migrations", st.Migrations)
		reg.Add("sim.chan.sends", st.ChanSends)
		reg.Add("sim.chan.recvs", st.ChanRecvs)
		reg.Add("sim.chan.blocked_sends", st.ChanBlockedSends)
		reg.Add("sim.chan.blocked_recvs", st.ChanBlockedRecvs)
		reg.Add("sim.wg.waits", st.WaitGroupWaits)
		reg.Add("sim.wg.dones", st.WaitGroupDones)
		reg.Add("sim.atomic.cas", st.AtomicCAS)
		reg.Add("sim.atomic.cas_failed", st.AtomicCASFailed)
		reg.Add("sim.atomic.faa", st.AtomicFAA)
		reg.Add("sim.atomic.loads", st.AtomicLoads)
		reg.Add("sim.atomic.stores", st.AtomicStores)
	}
	r.cells.completed(func(key string, val any) {
		switch v := val.(type) {
		case workload.Result:
			reg.Add("cells.tree", 1)
			addSim(v.Sim)
			reg.Add("alloc.allocs", v.Alloc.Allocs)
			reg.Add("alloc.frees", v.Alloc.Frees)
			reg.Add("pool.hits", v.PoolHits)
			reg.Add("pool.misses", v.PoolMisses)
			reg.Add("pool.failed_trylocks", v.FailedTryLocks)
		case workload.ChurnResult:
			reg.Add("cells.contend", 1)
			addSim(v.Sim)
			reg.Add("alloc.allocs", v.Alloc.Allocs)
			reg.Add("alloc.frees", v.Alloc.Frees)
		case workload.ReplayResult:
			reg.Add("cells.replay", 1)
			addSim(v.Sim)
			reg.Add("alloc.allocs", v.Alloc.Allocs)
			reg.Add("alloc.frees", v.Alloc.Frees)
		case bgw.Result:
			reg.Add("cells.bgw", 1)
			addSim(v.Sim)
			reg.Add("alloc.allocs", v.Alloc.Allocs)
			reg.Add("alloc.frees", v.Alloc.Frees)
			reg.Add("pool.hits", v.PoolHits)
			reg.Add("shadow.reuses", v.ShadowReuses)
		case e2eResult:
			reg.Add("cells.e2e", 1)
			reg.Add("alloc.allocs", v.Allocs)
		}
	})
	return reg.Snapshot()
}

// traceTreeConfig is the fixed, small tree run the exports trace: big
// enough that heap-lock serialization is unmistakable under the
// global-lock allocator, small enough that the Chrome JSON stays in
// the tens of megabytes.
func (r *Runner) traceTreeConfig() workload.TreeConfig {
	return workload.TreeConfig{Depth: 3, Trees: 400, Threads: 8, Processors: 8,
		InitWork: InitWork, UseWork: UseWork}
}

// traceStrategies are the allocators whose tree runs ExportTraces
// records: the global-lock baseline, the arena allocator, and Amplify.
var traceStrategies = []string{"serial", "ptmalloc", "amplify"}

// ExportTraces writes the observability artifacts into dir:
//
//	trace-<strategy>.json   Chrome trace_event export of a tree run
//	trace-serial.jsonl      the same serial run as compact JSONL
//	trace-locks.txt         per-lock contention profile of the serial run
//	profile-folded.txt      folded stacks of the end-to-end MiniCC program
//	metrics.json            the unified metrics registry snapshot
//
// Every JSON artifact is validated with json.Valid before it is
// written; an invalid export is an error, never a file.
func (r *Runner) ExportTraces(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cfg := r.traceTreeConfig()
	var serialEvents []sim.Event
	for _, strategy := range traceStrategies {
		rec := &sim.Recorder{Max: 4_000_000}
		tcfg := cfg
		tcfg.Tracer = rec
		if _, err := workload.RunTree(strategy, tcfg); err != nil {
			return fmt.Errorf("bench: trace run %s: %w", strategy, err)
		}
		events := rec.Snapshot()
		out, err := obsv.ChromeTrace(events, tcfg.Processors)
		if err != nil {
			return fmt.Errorf("bench: chrome export %s: %w", strategy, err)
		}
		if !json.Valid(out) {
			return fmt.Errorf("bench: chrome export %s: invalid JSON", strategy)
		}
		if err := os.WriteFile(filepath.Join(dir, "trace-"+strategy+".json"), out, 0o644); err != nil {
			return err
		}
		if strategy == "serial" {
			serialEvents = events
		}
	}

	jl, err := obsv.JSONL(serialEvents)
	if err != nil {
		return fmt.Errorf("bench: jsonl export: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "trace-serial.jsonl"), jl, 0o644); err != nil {
		return err
	}
	locks := obsv.FormatLockProfile(obsv.LockProfile(serialEvents))
	if err := os.WriteFile(filepath.Join(dir, "trace-locks.txt"), []byte(locks), 0o644); err != nil {
		return err
	}

	folded, err := r.foldedProfile()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "profile-folded.txt"), []byte(folded), 0o644); err != nil {
		return err
	}

	metrics, err := json.MarshalIndent(r.Metrics(), "", "  ")
	if err != nil {
		return err
	}
	if !json.Valid(metrics) {
		return fmt.Errorf("bench: metrics export: invalid JSON")
	}
	return os.WriteFile(filepath.Join(dir, "metrics.json"), metrics, 0o644)
}

// foldedProfile runs the amplified end-to-end MiniCC program under the
// cycle profiler and returns its folded stacks.
func (r *Runner) foldedProfile() (string, error) {
	src := treeSource(4, 30, e2eDepth)
	amped, _, err := core.Rewrite(src, core.Options{})
	if err != nil {
		return "", err
	}
	prof := obsv.NewProfiler()
	res, err := vm.RunSource(amped, vm.Config{Profiler: prof, Engine: r.Engine})
	if err != nil {
		return "", fmt.Errorf("bench: profile run: %w", err)
	}
	prof.Finish(res.Makespan)
	return prof.Folded(), nil
}
