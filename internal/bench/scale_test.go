package bench

import "testing"

// The scale cells must be deterministic and must land in the report's
// Makespans map like every other cell; this exercises the smallest
// full-mode cell so the test stays fast.
func TestScaleCellDeterministic(t *testing.T) {
	a := NewRunner(false)
	c1, err := a.runScale(8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b := NewRunner(false)
	c2, err := b.runScale(8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Res.Makespan != c2.Res.Makespan {
		t.Fatalf("scale cell not deterministic: %d vs %d", c1.Res.Makespan, c2.Res.Makespan)
	}
	if c1.Res.Makespan <= 0 {
		t.Fatalf("makespan = %d, want > 0", c1.Res.Makespan)
	}
	if ev := scaleEvents(c1.Res); ev <= 0 {
		t.Fatalf("scaleEvents = %d, want > 0", ev)
	}
	ms := a.Makespans()
	if _, ok := ms[scaleKey(8, 1000)]; !ok {
		t.Fatalf("scale cell missing from Makespans: %v", ms)
	}
}

// The closure engine must not change any simulated result the bench
// harness produces: same end-to-end cell, both engines, same makespan.
func TestEngineParityOnBenchCell(t *testing.T) {
	sw := NewRunner(true)
	cells := sw.endToEndCells()
	if len(cells) == 0 {
		t.Fatal("no end-to-end cells")
	}
	r1, err := sw.runEndToEndCell(cells[0])
	if err != nil {
		t.Fatal(err)
	}
	cl := NewRunner(true)
	cl.Engine = "closure"
	r2, err := cl.runEndToEndCell(cells[0])
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Fatalf("engine parity broken: switch makespan %d, closure %d", r1.Makespan, r2.Makespan)
	}
}
