package bench

import (
	"fmt"
	"strings"

	"amplify/internal/core"
	"amplify/internal/interp"
	"amplify/internal/vet"
	"amplify/internal/vm"
)

// The escape experiment measures what the interprocedural analysis
// (internal/vet) buys when it drives the rewrites instead of only
// vetoing them: the same committed MiniCC workloads run through the
// classic §3.2 transform and through the analysis-driven one (frame
// promotion, thread-private pools, pool pre-sizing), on the bytecode
// VM over the same simulated machine.

// escWorkload is one committed corpus program.
type escWorkload struct {
	name string
	src  string
}

// escThreads is the thread count of the threaded corpus programs.
const escThreads = 4

// escWorkloads returns the committed corpus, sized for the Runner's
// tier. Every workload is deterministic and prints nothing from
// spawned threads, so both engines must produce identical output.
func (r *Runner) escWorkloads() []escWorkload {
	churnTrees, builderIters, ringMsgs := 96, 96, 48
	if r.quick {
		churnTrees, builderIters, ringMsgs = 24, 48, 16
	}
	return []escWorkload{
		// The paper's tree churn: the per-tree root is a promotable
		// new/delete pair, and Node never crosses a spawn boundary
		// (workers only exchange ints), so its pool goes lock-free.
		{"treechurn", treeSource(escThreads, churnTrees, e2eDepth)},
		// Single-threaded builder with statically bounded loops: the
		// factory-made objects escape their creating function but the
		// call-graph bound is finite, so the pool is pre-sized.
		{"builder", escBuilderSource(builderIters)},
		// Spawn hand-off ring: Msg crosses the thread boundary and must
		// keep the locked pool; the consumer's scratch Buf is both
		// frame-promotable and thread-local.
		{"msgring", escRingSource(ringMsgs)},
	}
}

func escBuilderSource(iters int) string {
	return fmt.Sprintf(`
class Part {
  int a;
public:
  Part(int x) { a = x; }
  ~Part() {}
  int get() { return a; }
};

class Rec {
  Rec* next;
  int v;
public:
  Rec(int x) { v = x * 3; next = null; }
  ~Rec() {}
  int val() { return v; }
  Rec* tail() { return next; }
  void link(Rec* n) { next = n; }
};

Rec* make(int x) {
  return new Rec(x);
}

int main() {
  int total = 0;
  for (int i = 0; i < %d; i = i + 1) {
    Part* p = new Part(i);
    total = total + p->get();
    delete p;
  }
  Rec* head = make(0);
  Rec* cur = head;
  for (int j = 1; j < %d; j = j + 1) {
    Rec* r = make(j);
    cur->link(r);
    cur = r;
  }
  cur = head;
  while (cur) {
    total = total + cur->val();
    cur = cur->tail();
  }
  while (head) {
    Rec* t = head->tail();
    delete head;
    head = t;
  }
  print(total);
  return 0;
}
`, iters, iters)
}

func escRingSource(msgs int) string {
	return fmt.Sprintf(`
class Msg {
  int tag;
public:
  Msg(int t) { tag = t; }
  ~Msg() {}
  int read() { return tag; }
};

class Buf {
  int v;
public:
  Buf(int x) { v = x + 1; }
  ~Buf() {}
  int get() { return v; }
};

void consume(Msg* m) {
  Buf* b = new Buf(m->read());
  __work(b->get());
  delete b;
  delete m;
}

int main() {
  for (int i = 0; i < %d; i = i + 1) {
    Msg* m = new Msg(i);
    spawn consume(m);
  }
  join;
  return 0;
}
`, msgs)
}

// escKey names one escape memo cell.
func escKey(workload string, escape bool) string {
	variant := "classic"
	if escape {
		variant = "escape"
	}
	return fmt.Sprintf("escape/%s/%s", workload, variant)
}

// runEscapeCell pre-processes one corpus workload (with or without the
// analysis-driven rewrites) and executes it on the bytecode VM,
// memoized. On quick sizes the tree-walking interpreter re-runs the
// program as a cross-check, like the end-to-end experiment.
func (r *Runner) runEscapeCell(w escWorkload, escape bool) (e2eResult, error) {
	v, err := r.cells.do(escKey(w.name, escape), func() (any, error) {
		out, _, err := core.Rewrite(w.src, core.Options{Escape: escape})
		if err != nil {
			return nil, err
		}
		res, err := vm.RunSource(out, vm.Config{NoOpt: r.VMNoOpt, Engine: r.Engine})
		if err != nil {
			return nil, err
		}
		if res.ExitCode != 0 {
			return nil, fmt.Errorf("escape %s: exit code %d", escKey(w.name, escape), res.ExitCode)
		}
		if r.quick {
			ires, err := interp.RunSource(out, interp.Config{})
			if err != nil {
				return nil, fmt.Errorf("escape cross-check %s: interp: %w", w.name, err)
			}
			if ires.Output != res.Output || ires.ExitCode != res.ExitCode {
				return nil, fmt.Errorf("escape cross-check %s: engine results differ", w.name)
			}
			if ires.Alloc.Allocs != res.Alloc.Allocs {
				return nil, fmt.Errorf("escape cross-check %s: heap allocations vm %d != interp %d",
					w.name, res.Alloc.Allocs, ires.Alloc.Allocs)
			}
		}
		return e2eResult{
			Makespan:  res.Makespan,
			Allocs:    res.Alloc.Allocs,
			Footprint: res.Footprint,
			PeakBytes: res.Alloc.PeakBytes,
			IntFragBP: fragBP(res.Heap.ReqBytes, res.Heap.GrantedBytes),
			ExtFragBP: fragBP(res.Heap.LargestFree, res.Heap.FreeBytes),
		}, nil
	})
	if err != nil {
		return e2eResult{}, err
	}
	return v.(e2eResult), nil
}

// EscapeSiteReport is one `new` site's verdict in the bench report.
type EscapeSiteReport struct {
	Func     string `json:"func"`
	Class    string `json:"class"`
	Line     int    `json:"line"`
	Verdict  string `json:"verdict"`
	Bound    int64  `json:"bound"`
	Promoted bool   `json:"promoted"`
}

// EscapeWorkloadReport is the per-class/per-site verdict section of
// one corpus workload (bench report schema v4).
type EscapeWorkloadReport struct {
	Workload    string             `json:"workload"`
	Sites       []EscapeSiteReport `json:"sites"`
	ThreadLocal []string           `json:"thread_local"`
	Shared      []string           `json:"shared"`
	Presize     []vet.ClassBound   `json:"presize,omitempty"`
}

// EscapeVerdicts runs the interprocedural analysis over the committed
// corpus and returns the per-workload verdict sections.
func (r *Runner) EscapeVerdicts() ([]EscapeWorkloadReport, error) {
	var out []EscapeWorkloadReport
	for _, w := range r.escWorkloads() {
		rep, err := vet.EscapeSource(w.src)
		if err != nil {
			return nil, fmt.Errorf("escape verdicts %s: %w", w.name, err)
		}
		wr := EscapeWorkloadReport{
			Workload:    w.name,
			Sites:       []EscapeSiteReport{},
			ThreadLocal: rep.ThreadLocal,
			Shared:      rep.Shared,
			Presize:     rep.Presize,
		}
		for _, s := range rep.Sites {
			wr.Sites = append(wr.Sites, EscapeSiteReport{
				Func: s.Func, Class: s.Class, Line: s.Pos.Line,
				Verdict: s.Escape.String(), Bound: s.Bound, Promoted: s.Promote,
			})
		}
		out = append(out, wr)
	}
	return out, nil
}

// Escape renders the experiment: makespan and peak footprint of every
// corpus workload under the classic transform vs the analysis-driven
// one, followed by the analysis verdicts.
func (r *Runner) Escape() (string, error) {
	var b strings.Builder
	b.WriteString("Escape-analysis rewrites: classic amplify vs analysis-driven (bytecode VM)\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %8s %12s %12s\n",
		"workload", "classic", "escape", "speedup", "classic-peak", "escape-peak")
	for _, w := range r.escWorkloads() {
		classic, err := r.runEscapeCell(w, false)
		if err != nil {
			return "", err
		}
		esc, err := r.runEscapeCell(w, true)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s %14d %14d %7.2fx %12d %12d\n",
			w.name, classic.Makespan, esc.Makespan,
			float64(classic.Makespan)/float64(esc.Makespan),
			classic.PeakBytes, esc.PeakBytes)
	}
	verdicts, err := r.EscapeVerdicts()
	if err != nil {
		return "", err
	}
	b.WriteString("verdicts:\n")
	for _, wr := range verdicts {
		promoted := 0
		for _, s := range wr.Sites {
			if s.Promoted {
				promoted++
			}
		}
		fmt.Fprintf(&b, "  %-10s %d sites (%d frame-promoted)", wr.Workload, len(wr.Sites), promoted)
		if len(wr.Shared) > 0 {
			fmt.Fprintf(&b, "; shared: %s", strings.Join(wr.Shared, ", "))
		}
		if len(wr.Presize) > 0 {
			parts := make([]string, 0, len(wr.Presize))
			for _, p := range wr.Presize {
				parts = append(parts, fmt.Sprintf("%s=%d", p.Class, p.Count))
			}
			fmt.Fprintf(&b, "; presize: %s", strings.Join(parts, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}
