package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"amplify/internal/core"
	"amplify/internal/heapobsv"
	"amplify/internal/vm"
	"amplify/internal/workload"
)

// ExportHeap writes the heap-introspection artifacts into dir:
//
//	heap-timeline-<strategy>.jsonl   virtual-time heap timeline (one
//	heap-timeline-<strategy>.csv     JSON object / CSV row per sample)
//	heap-sites-folded.txt            allocation-site folded stacks of
//	                                 the end-to-end MiniCC program
//	heap-sites.txt                   the same profile as a table
//	heap-summary.json                per-cell footprint/fragmentation
//
// Timelines sample in virtual time, so every artifact is deterministic:
// byte-identical across hosts and -j values. Observation never charges
// simulated work — the observed runs' makespans equal the unobserved
// ones (asserted here, not assumed).
func (r *Runner) ExportHeap(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// The same strategy trio as ExportTraces, on the same runs: the
	// timelines and the Chrome traces describe identical executions.
	cfg := r.traceTreeConfig()
	for _, strategy := range traceStrategies {
		bare, err := workload.RunTree(strategy, cfg)
		if err != nil {
			return fmt.Errorf("bench: heap baseline run %s: %w", strategy, err)
		}
		tl := &heapobsv.Timeline{}
		tcfg := cfg
		tcfg.HeapObserver = tl
		res, err := workload.RunTree(strategy, tcfg)
		if err != nil {
			return fmt.Errorf("bench: heap timeline run %s: %w", strategy, err)
		}
		if res.Makespan != bare.Makespan {
			return fmt.Errorf("bench: heap observation changed %s makespan: %d != %d",
				strategy, res.Makespan, bare.Makespan)
		}
		tl.Finish(res.Makespan)
		for ext, out := range map[string][]byte{"jsonl": tl.JSONL(), "csv": tl.CSV()} {
			name := fmt.Sprintf("heap-timeline-%s.%s", strategy, ext)
			if err := os.WriteFile(filepath.Join(dir, name), out, 0o644); err != nil {
				return err
			}
		}
	}

	folded, table, err := r.siteProfile()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "heap-sites-folded.txt"), []byte(folded), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "heap-sites.txt"), []byte(table), 0o644); err != nil {
		return err
	}

	summary, err := json.MarshalIndent(r.HeapCells(), "", "  ")
	if err != nil {
		return err
	}
	if !json.Valid(summary) {
		return fmt.Errorf("bench: heap summary export: invalid JSON")
	}
	return os.WriteFile(filepath.Join(dir, "heap-summary.json"), append(summary, '\n'), 0o644)
}

// siteProfile runs the amplified end-to-end MiniCC program under the
// allocation-site profiler and returns its folded stacks and table.
func (r *Runner) siteProfile() (folded, table string, err error) {
	src := treeSource(4, 30, e2eDepth)
	amped, _, err := core.Rewrite(src, core.Options{})
	if err != nil {
		return "", "", err
	}
	prof := heapobsv.NewSiteProfile()
	if _, err := vm.RunSource(amped, vm.Config{HeapProf: prof, Engine: r.Engine}); err != nil {
		return "", "", fmt.Errorf("bench: site profile run: %w", err)
	}
	return prof.Folded(heapobsv.MetricAllocBytes), prof.Table(), nil
}
