// Command mcctrace works with allocation traces (internal/alloctrace):
// the flight-recorder artifacts mccrun -record-trace and the committed
// corpora produce.
//
// Usage:
//
//	mcctrace gen [-dir d]                  synthesize the committed corpora
//	mcctrace analyze [-json] trace...      print a trace's shape summary
//	mcctrace replay [-alloc s] [-procs n] trace...
//	                                       drive a trace through an allocator
//
// analyze and replay accept - as a trace argument to read the binary
// trace from stdin, so mccrun -record-trace output can be piped in
// without touching disk; a committed corpus name works anywhere a
// file path does.
//
// gen writes every corpus as <name>.trace (binary), <name>.trace.jsonl
// (mirror) and a SHA256SUMS manifest — the files committed under
// testdata/traces/, which CI re-generates and checksum-pins. analyze
// prints the deterministic text report (or JSON with -json). replay
// runs the trace through the chosen allocator on the simulated SMP and
// reports the makespan and allocator counters; all replayed numbers
// are simulated and deterministic.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"amplify/internal/alloc"
	"amplify/internal/alloctrace"
	"amplify/internal/workload"

	_ "amplify/internal/hoard"
	_ "amplify/internal/lfalloc"
	_ "amplify/internal/lkmalloc"
	_ "amplify/internal/ptmalloc"
	_ "amplify/internal/serial"
	_ "amplify/internal/smartheap"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mcctrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mcctrace gen|analyze|replay [flags] [trace...]")
	}
	switch cmd := args[0]; cmd {
	case "gen":
		return runGen(args[1:])
	case "analyze":
		return runAnalyze(args[1:])
	case "replay":
		return runReplay(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want gen, analyze or replay)", cmd)
	}
}

// runGen synthesizes every committed corpus into -dir, plus the
// SHA256SUMS manifest CI pins. Generation is deterministic, so a
// re-run over a clean checkout is a no-op diff.
func runGen(args []string) error {
	fs := flag.NewFlagSet("mcctrace gen", flag.ExitOnError)
	dir := fs.String("dir", "testdata/traces", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	var manifest []byte
	for _, name := range alloctrace.CorpusNames() {
		tr, err := alloctrace.Corpus(name)
		if err != nil {
			return err
		}
		bin := tr.Encode()
		jsonl := tr.JSONL()
		for _, f := range []struct {
			name string
			data []byte
		}{{name + ".trace", bin}, {name + ".trace.jsonl", jsonl}} {
			if err := os.WriteFile(filepath.Join(*dir, f.name), f.data, 0o644); err != nil {
				return err
			}
			manifest = append(manifest, fmt.Sprintf("%x  %s\n", sha256.Sum256(f.data), f.name)...)
		}
		st := tr.Stats()
		fmt.Printf("%-12s %7d events %8d bytes binary (%d allocs, %d cross-thread frees, %d leaked)\n",
			name, st.Events, len(bin), st.Allocs, st.CrossThreadFrees, st.Leaked)
	}
	return os.WriteFile(filepath.Join(*dir, "SHA256SUMS"), manifest, 0o644)
}

// runAnalyze prints each trace's deterministic shape summary.
func runAnalyze(args []string) error {
	fs := flag.NewFlagSet("mcctrace analyze", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the analysis as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("analyze needs at least one trace file")
	}
	for _, path := range fs.Args() {
		tr, err := readTrace(path)
		if err != nil {
			return err
		}
		a := alloctrace.Analyze(tr)
		if *asJSON {
			out, err := a.JSON()
			if err != nil {
				return err
			}
			fmt.Printf("%s\n", out)
		} else {
			fmt.Print(a.String())
		}
	}
	return nil
}

// runReplay drives each trace through the chosen allocator.
func runReplay(args []string) error {
	fs := flag.NewFlagSet("mcctrace replay", flag.ExitOnError)
	allocName := fs.String("alloc", "serial", "allocator: serial | ptmalloc | hoard | smartheap | lkmalloc | lfalloc")
	procs := fs.Int("procs", 8, "simulated processors")
	rerecord := fs.String("record-trace", "", "re-capture the replay as a binary trace (single input only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := alloc.Valid(*allocName); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("replay needs at least one trace file")
	}
	if *rerecord != "" && fs.NArg() != 1 {
		return fmt.Errorf("-record-trace replays a single trace")
	}
	for _, path := range fs.Args() {
		tr, err := readTrace(path)
		if err != nil {
			return err
		}
		cfg := workload.ReplayConfig{Trace: tr, Processors: *procs}
		var rec *alloctrace.Recorder
		if *rerecord != "" {
			rec = alloctrace.NewRecorder(tr.Name)
			cfg.HeapObserver = rec
		}
		res, err := workload.RunReplay(*allocName, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%s x %s: makespan %d cycles, %d allocs / %d frees, footprint %d bytes, peak %d bytes\n",
			res.TraceName, res.Strategy, res.Makespan,
			res.Alloc.Allocs, res.Alloc.Frees, res.Footprint, res.Alloc.PeakBytes)
		if rec != nil {
			out := rec.Trace()
			if err := out.Validate(); err != nil {
				return fmt.Errorf("re-captured trace failed validation: %w", err)
			}
			if err := os.WriteFile(*rerecord, out.Encode(), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// readTrace loads a binary trace — from stdin when the argument is
// "-" — falling back to a committed corpus name when the argument is
// not a file.
func readTrace(path string) (*alloctrace.Trace, error) {
	if path == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, fmt.Errorf("reading trace from stdin: %w", err)
		}
		return alloctrace.Decode(data)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if tr, cerr := alloctrace.Corpus(path); cerr == nil {
			return tr, nil
		}
		return nil, err
	}
	return alloctrace.Decode(data)
}
