// Command mccrun executes a MiniCC program on the simulated SMP.
//
// Usage:
//
//	mccrun [flags] program.mcc
//
// Flags:
//
//	-alloc s      C-library allocator: serial | ptmalloc | hoard | smartheap
//	-procs n      simulated processors (default 8)
//	-amplify      run the Amplify pre-processor before executing
//	-arrays-only  with -amplify: only shadow data-type arrays
//	-mode m       with -amplify: shadow | flag
//	-no-opt       with the vm engine: disable the bytecode optimizer
//	              (the default -O behavior changes nothing simulated,
//	              only host speed)
//	-stats        print execution statistics to stderr
//	-vet          lint the program first; refuse to run on errors
//	-trace-out f  write a Chrome trace_event JSON file (load it in
//	              chrome://tracing or Perfetto; one track per virtual CPU,
//	              async slices for lock-wait intervals)
//	-trace-jsonl f write the simulation events as compact JSON lines
//	-profile-out f write pprof-style folded stacks attributing simulated
//	              cycles to MiniCC functions (vm engine only); the
//	              per-lock contention profile goes to f.locks
//	-metrics f    write a JSON metrics snapshot of the run
//
// The program's print() output goes to stdout; the exit code is main's
// return value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"amplify/internal/alloc"
	"amplify/internal/core"
	"amplify/internal/interp"
	"amplify/internal/obsv"
	"amplify/internal/sim"
	"amplify/internal/vet"
	"amplify/internal/vm"
)

// runResult is the engine-independent result view.
type runResult struct {
	output               string
	exitCode             int64
	makespan             int64
	alloc                alloc.Stats
	poolHits, poolMisses int64
	shadowReuses         int64
	sim                  sim.Stats
	footprint            int64
}

func main() {
	allocName := flag.String("alloc", "serial", "allocator: serial | ptmalloc | hoard | smartheap | lkmalloc")
	engine := flag.String("engine", "vm", "execution engine: vm (compiled bytecode) | ast (tree-walking)")
	procs := flag.Int("procs", 8, "simulated processors")
	amplify := flag.Bool("amplify", false, "pre-process with Amplify before running")
	arraysOnly := flag.Bool("arrays-only", false, "with -amplify: only shadow data arrays")
	mode := flag.String("mode", "shadow", "with -amplify: shadow | flag")
	noOpt := flag.Bool("no-opt", false, "with -engine vm: disable the bytecode optimizer")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	trace := flag.Int("trace", 0, "print the first N simulation events to stderr")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file of the run")
	traceJSONL := flag.String("trace-jsonl", "", "write the simulation events as compact JSON lines")
	profileOut := flag.String("profile-out", "", "write folded stacks of simulated cycles (vm engine only); per-lock profile goes to <file>.locks")
	metricsOut := flag.String("metrics", "", "write a JSON metrics snapshot of the run")
	vetFirst := flag.Bool("vet", false, "lint the program before running; refuse to run on errors")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mccrun [flags] program.mcc  (use - for stdin)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *vetFirst {
		res, err := vet.CheckSource(src)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(os.Stderr, res.String())
		if res.HasErrors() {
			errs, _ := res.Counts()
			fatal(fmt.Errorf("vet found %d errors; refusing to run", errs))
		}
	}
	if *amplify {
		transformed, rep, err := core.Rewrite(src, core.Options{
			ArraysOnly: *arraysOnly,
			Mode:       core.Mode(*mode),
		})
		if err != nil {
			fatal(err)
		}
		src = transformed
		if *stats {
			fmt.Fprint(os.Stderr, rep.String())
		}
	}
	needEvents := *traceOut != "" || *traceJSONL != "" || *profileOut != ""
	var rec *sim.Recorder
	if *trace > 0 {
		rec = &sim.Recorder{Max: *trace}
	} else if needEvents {
		rec = &sim.Recorder{Max: 4_000_000}
	}
	var prof *obsv.Profiler
	if *profileOut != "" {
		if *engine != "vm" {
			fatal(fmt.Errorf("-profile-out needs -engine vm (the ast engine has no call hooks)"))
		}
		prof = obsv.NewProfiler()
	}
	var res runResult
	switch *engine {
	case "ast":
		icfg := interp.Config{Processors: *procs, Strategy: *allocName}
		if rec != nil {
			icfg.Tracer = rec
		}
		r, err := interp.RunSource(src, icfg)
		if err != nil {
			fatal(err)
		}
		res = runResult{r.Output, r.ExitCode, r.Makespan, r.Alloc,
			r.PoolHits, r.PoolMisses, r.ShadowReuses, r.Sim, r.Footprint}
	case "vm":
		vcfg := vm.Config{Processors: *procs, Strategy: *allocName, NoOpt: *noOpt}
		if rec != nil {
			vcfg.Tracer = rec
		}
		if prof != nil {
			vcfg.Profiler = prof
		}
		r, err := vm.RunSource(src, vcfg)
		if err != nil {
			fatal(err)
		}
		res = runResult{r.Output, r.ExitCode, r.Makespan, r.Alloc,
			r.PoolHits, r.PoolMisses, r.ShadowReuses, r.Sim, r.Footprint}
	default:
		fatal(fmt.Errorf("unknown engine %q (want vm or ast)", *engine))
	}
	if rec != nil && *trace > 0 {
		fmt.Fprint(os.Stderr, rec.Timeline())
	}
	if err := writeArtifacts(rec, prof, res, *procs, *traceOut, *traceJSONL, *profileOut, *metricsOut); err != nil {
		fatal(err)
	}
	fmt.Print(res.output)
	if *stats {
		fmt.Fprintf(os.Stderr, "execution statistics (%s engine)\n", *engine)
		fmt.Fprintf(os.Stderr, "  makespan:        %d cycles\n", res.makespan)
		fmt.Fprintf(os.Stderr, "  heap allocs:     %d (frees %d)\n", res.alloc.Allocs, res.alloc.Frees)
		fmt.Fprintf(os.Stderr, "  pool hits:       %d (misses %d)\n", res.poolHits, res.poolMisses)
		fmt.Fprintf(os.Stderr, "  shadow reuses:   %d\n", res.shadowReuses)
		fmt.Fprintf(os.Stderr, "  lock acquires:   %d (contended %d)\n", res.sim.LockAcquires, res.sim.LockContended)
		fmt.Fprintf(os.Stderr, "  cache misses:    %d (hits %d)\n", res.sim.CacheMisses, res.sim.CacheHits)
		fmt.Fprintf(os.Stderr, "  footprint:       %d bytes\n", res.footprint)
	}
	os.Exit(int(res.exitCode))
}

// writeArtifacts emits the requested observability files. Every JSON
// artifact is checked with json.Valid before it reaches disk.
func writeArtifacts(rec *sim.Recorder, prof *obsv.Profiler, res runResult, procs int, traceOut, traceJSONL, profileOut, metricsOut string) error {
	var events []sim.Event
	if rec != nil {
		events = rec.Snapshot()
	}
	if traceOut != "" {
		out, err := obsv.ChromeTrace(events, procs)
		if err != nil {
			return err
		}
		if !json.Valid(out) {
			return fmt.Errorf("trace export produced invalid JSON")
		}
		if err := os.WriteFile(traceOut, out, 0o644); err != nil {
			return err
		}
	}
	if traceJSONL != "" {
		out, err := obsv.JSONL(events)
		if err != nil {
			return err
		}
		if err := os.WriteFile(traceJSONL, out, 0o644); err != nil {
			return err
		}
	}
	if profileOut != "" {
		prof.Finish(res.makespan)
		if err := os.WriteFile(profileOut, []byte(prof.Folded()), 0o644); err != nil {
			return err
		}
		locks := obsv.FormatLockProfile(obsv.LockProfile(events))
		if err := os.WriteFile(profileOut+".locks", []byte(locks), 0o644); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		reg := obsv.NewRegistry()
		reg.Set("makespan", res.makespan)
		reg.Set("alloc.allocs", res.alloc.Allocs)
		reg.Set("alloc.frees", res.alloc.Frees)
		reg.Set("alloc.peak_bytes", res.alloc.PeakBytes)
		reg.Set("pool.hits", res.poolHits)
		reg.Set("pool.misses", res.poolMisses)
		reg.Set("shadow.reuses", res.shadowReuses)
		reg.Set("sim.lock.acquires", res.sim.LockAcquires)
		reg.Set("sim.lock.contended", res.sim.LockContended)
		reg.Set("sim.lock.wait_cycles", res.sim.LockWaitTime)
		reg.Set("sim.cache.hits", res.sim.CacheHits)
		reg.Set("sim.cache.misses", res.sim.CacheMisses)
		reg.Set("sim.cache.invalidations", res.sim.CacheInvalidations)
		reg.Set("sim.cache.rfos", res.sim.CacheRFOs)
		reg.Set("sim.migrations", res.sim.Migrations)
		reg.Set("footprint.bytes", res.footprint)
		out, err := reg.JSON()
		if err != nil {
			return err
		}
		if !json.Valid(out) {
			return fmt.Errorf("metrics export produced invalid JSON")
		}
		if err := os.WriteFile(metricsOut, out, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func readInput(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mccrun:", err)
	os.Exit(1)
}
