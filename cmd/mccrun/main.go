// Command mccrun executes a MiniCC program on the simulated SMP.
//
// Usage:
//
//	mccrun [flags] program.mcc
//
// Flags:
//
//	-alloc s     C-library allocator: serial | ptmalloc | hoard | smartheap
//	-procs n     simulated processors (default 8)
//	-amplify     run the Amplify pre-processor before executing
//	-arrays-only with -amplify: only shadow data-type arrays
//	-mode m      with -amplify: shadow | flag
//	-no-opt      with the vm engine: disable the bytecode optimizer
//	             (the default -O behavior changes nothing simulated,
//	             only host speed)
//	-stats       print execution statistics to stderr
//	-vet         lint the program first; refuse to run on errors
//
// The program's print() output goes to stdout; the exit code is main's
// return value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"amplify/internal/core"
	"amplify/internal/interp"
	"amplify/internal/sim"
	"amplify/internal/vet"
	"amplify/internal/vm"
)

// runResult is the engine-independent result view.
type runResult struct {
	output                      string
	exitCode                    int64
	makespan                    int64
	allocs, frees               int64
	poolHits, poolMisses        int64
	shadowReuses                int64
	lockAcquires, lockContended int64
	cacheMisses, cacheHits      int64
	footprint                   int64
}

func main() {
	allocName := flag.String("alloc", "serial", "allocator: serial | ptmalloc | hoard | smartheap | lkmalloc")
	engine := flag.String("engine", "vm", "execution engine: vm (compiled bytecode) | ast (tree-walking)")
	procs := flag.Int("procs", 8, "simulated processors")
	amplify := flag.Bool("amplify", false, "pre-process with Amplify before running")
	arraysOnly := flag.Bool("arrays-only", false, "with -amplify: only shadow data arrays")
	mode := flag.String("mode", "shadow", "with -amplify: shadow | flag")
	noOpt := flag.Bool("no-opt", false, "with -engine vm: disable the bytecode optimizer")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	trace := flag.Int("trace", 0, "print the first N simulation events to stderr")
	vetFirst := flag.Bool("vet", false, "lint the program before running; refuse to run on errors")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mccrun [flags] program.mcc  (use - for stdin)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *vetFirst {
		res, err := vet.CheckSource(src)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(os.Stderr, res.String())
		if res.HasErrors() {
			errs, _ := res.Counts()
			fatal(fmt.Errorf("vet found %d errors; refusing to run", errs))
		}
	}
	if *amplify {
		transformed, rep, err := core.Rewrite(src, core.Options{
			ArraysOnly: *arraysOnly,
			Mode:       core.Mode(*mode),
		})
		if err != nil {
			fatal(err)
		}
		src = transformed
		if *stats {
			fmt.Fprint(os.Stderr, rep.String())
		}
	}
	var rec *sim.Recorder
	if *trace > 0 {
		rec = &sim.Recorder{Max: *trace}
	}
	var res runResult
	switch *engine {
	case "ast":
		icfg := interp.Config{Processors: *procs, Strategy: *allocName}
		if rec != nil {
			icfg.Tracer = rec
		}
		r, err := interp.RunSource(src, icfg)
		if err != nil {
			fatal(err)
		}
		res = runResult{r.Output, r.ExitCode, r.Makespan, r.Alloc.Allocs, r.Alloc.Frees,
			r.PoolHits, r.PoolMisses, r.ShadowReuses, r.Sim.LockAcquires, r.Sim.LockContended,
			r.Sim.CacheMisses, r.Sim.CacheHits, r.Footprint}
	case "vm":
		vcfg := vm.Config{Processors: *procs, Strategy: *allocName, NoOpt: *noOpt}
		if rec != nil {
			vcfg.Tracer = rec
		}
		r, err := vm.RunSource(src, vcfg)
		if err != nil {
			fatal(err)
		}
		res = runResult{r.Output, r.ExitCode, r.Makespan, r.Alloc.Allocs, r.Alloc.Frees,
			r.PoolHits, r.PoolMisses, r.ShadowReuses, r.Sim.LockAcquires, r.Sim.LockContended,
			r.Sim.CacheMisses, r.Sim.CacheHits, r.Footprint}
	default:
		fatal(fmt.Errorf("unknown engine %q (want vm or ast)", *engine))
	}
	if rec != nil {
		fmt.Fprint(os.Stderr, rec.Timeline())
	}
	fmt.Print(res.output)
	if *stats {
		fmt.Fprintf(os.Stderr, "execution statistics (%s engine)\n", *engine)
		fmt.Fprintf(os.Stderr, "  makespan:        %d cycles\n", res.makespan)
		fmt.Fprintf(os.Stderr, "  heap allocs:     %d (frees %d)\n", res.allocs, res.frees)
		fmt.Fprintf(os.Stderr, "  pool hits:       %d (misses %d)\n", res.poolHits, res.poolMisses)
		fmt.Fprintf(os.Stderr, "  shadow reuses:   %d\n", res.shadowReuses)
		fmt.Fprintf(os.Stderr, "  lock acquires:   %d (contended %d)\n", res.lockAcquires, res.lockContended)
		fmt.Fprintf(os.Stderr, "  cache misses:    %d (hits %d)\n", res.cacheMisses, res.cacheHits)
		fmt.Fprintf(os.Stderr, "  footprint:       %d bytes\n", res.footprint)
	}
	os.Exit(int(res.exitCode))
}

func readInput(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mccrun:", err)
	os.Exit(1)
}
