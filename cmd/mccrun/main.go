// Command mccrun executes a MiniCC program on the simulated SMP.
//
// Usage:
//
//	mccrun [flags] program.mcc
//
// Flags:
//
//	-alloc s      C-library allocator: serial | ptmalloc | hoard |
//	              smartheap | lkmalloc | lfalloc; unknown names fail
//	              fast with the list of registered strategies
//	-engine e     execution engine: vm (bytecode dispatch loop, default) |
//	              closure (bytecode compiled to chained Go closures —
//	              identical simulated results, faster host) | ast
//	              (tree-walking reference)
//	-procs n      simulated processors (default 8)
//	-amplify      run the Amplify pre-processor before executing
//	-arrays-only  with -amplify: only shadow data-type arrays
//	-mode m       with -amplify: shadow | flag
//	-no-opt       with the vm engine: disable the bytecode optimizer
//	              (the default -O behavior changes nothing simulated,
//	              only host speed)
//	-stats        print execution statistics to stderr
//	-vet          lint the program first (including the interprocedural
//	              escape/lifetime verdicts); refuse to run on errors
//	-escape       with -amplify: apply the escape-analysis-driven
//	              rewrites (frame promotion, thread-private pools,
//	              pool pre-sizing)
//	-trace-out f  write a Chrome trace_event JSON file (load it in
//	              chrome://tracing or Perfetto; one track per virtual CPU,
//	              async slices for lock-wait intervals)
//	-trace-jsonl f write the simulation events as compact JSON lines
//	-profile-out f write pprof-style folded stacks attributing simulated
//	              cycles to MiniCC functions (vm engine only); the
//	              per-lock contention profile goes to f.locks
//	-heap-timeline f write a virtual-time heap timeline (vm engine only):
//	              footprint, live/free bytes, fragmentation, pool
//	              retention — JSONL by default, CSV when f ends in .csv
//	-heap-interval n sampling period of -heap-timeline in cycles
//	-heap-profile f write pprof-style folded stacks attributing allocated
//	              bytes to MiniCC allocation sites (vm engine only); a
//	              per-site table goes to f.sites
//	-record-trace f write the run's allocator request stream as a binary
//	              allocation trace (internal/alloctrace format, vm engine
//	              only) with a JSONL mirror at f.jsonl; replay it through
//	              any allocator with mcctrace replay
//	-metrics f    write a JSON metrics snapshot of the run, including
//	              per-span counters; use - for stderr
//	-spans f      write a JSONL span stream of the whole pipeline (read
//	              -> vet -> amplify -> parse -> sema -> compile ->
//	              simulate) with host-time durations and deterministic
//	              attributes; use - for stderr. With -trace-out the
//	              spans also appear as a dedicated host track in the
//	              Chrome trace, alongside the virtual-CPU tracks.
//
// The program's print() output goes to stdout; everything diagnostic
// (-stats, -metrics -, -spans -) goes to stderr, so recorded stdout
// stays byte-diffable. The exit code is main's return value.
// Observation never charges simulated work: every -trace/-profile/
// -heap/-spans flag leaves the makespan and all other simulated
// numbers unchanged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"amplify/internal/alloc"
	"amplify/internal/alloctrace"
	"amplify/internal/core"
	"amplify/internal/heapobsv"
	"amplify/internal/interp"
	"amplify/internal/obsv"
	"amplify/internal/sim"
	"amplify/internal/telemetry"
	"amplify/internal/vet"
	"amplify/internal/vm"
)

// runResult is the engine-independent result view.
type runResult struct {
	output               string
	exitCode             int64
	makespan             int64
	alloc                alloc.Stats
	poolHits, poolMisses int64
	shadowReuses         int64
	sim                  sim.Stats
	footprint            int64
}

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mccrun:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// run executes the program and writes every requested artifact. The
// int is the simulated program's exit code; any error — including a
// failed artifact write after a successful run — makes mccrun exit
// non-zero instead of silently reporting the program's status.
func run(args []string) (int, error) {
	fs := flag.NewFlagSet("mccrun", flag.ExitOnError)
	allocName := fs.String("alloc", "serial", "allocator: serial | ptmalloc | hoard | smartheap | lkmalloc | lfalloc")
	engine := fs.String("engine", "vm", "execution engine: vm (bytecode dispatch loop) | closure (bytecode compiled to chained Go closures) | ast (tree-walking)")
	procs := fs.Int("procs", 8, "simulated processors")
	amplify := fs.Bool("amplify", false, "pre-process with Amplify before running")
	arraysOnly := fs.Bool("arrays-only", false, "with -amplify: only shadow data arrays")
	mode := fs.String("mode", "shadow", "with -amplify: shadow | flag")
	noOpt := fs.Bool("no-opt", false, "with -engine vm: disable the bytecode optimizer")
	stats := fs.Bool("stats", false, "print execution statistics to stderr")
	trace := fs.Int("trace", 0, "print the first N simulation events to stderr")
	traceOut := fs.String("trace-out", "", "write a Chrome trace_event JSON file of the run")
	traceJSONL := fs.String("trace-jsonl", "", "write the simulation events as compact JSON lines")
	profileOut := fs.String("profile-out", "", "write folded stacks of simulated cycles (vm engine only); per-lock profile goes to <file>.locks")
	heapTimeline := fs.String("heap-timeline", "", "write a virtual-time heap timeline (vm engine only); JSONL, or CSV when the file ends in .csv")
	heapInterval := fs.Int64("heap-interval", heapobsv.DefaultInterval, "heap-timeline sampling period in cycles")
	heapProfile := fs.String("heap-profile", "", "write folded stacks of allocated bytes per MiniCC site (vm engine only); per-site table goes to <file>.sites")
	recordTrace := fs.String("record-trace", "", "write the allocator request stream as a binary allocation trace (vm engine only); JSONL mirror goes to <file>.jsonl")
	metricsOut := fs.String("metrics", "", "write a JSON metrics snapshot of the run (use - for stderr)")
	spansOut := fs.String("spans", "", "write a JSONL span stream of the pipeline phases (use - for stderr)")
	vetFirst := fs.Bool("vet", false, "lint the program before running; refuse to run on errors")
	escape := fs.Bool("escape", false, "with -amplify: apply the escape-analysis-driven rewrites")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mccrun [flags] program.mcc  (use - for stdin)")
		fs.PrintDefaults()
		os.Exit(2)
	}
	// Fail fast on a typo'd allocator or engine name — before the
	// program is read, parsed or simulated — with the valid choices.
	if err := alloc.Valid(*allocName); err != nil {
		return 0, err
	}
	switch *engine {
	case "vm", "closure", "ast":
	default:
		return 0, fmt.Errorf("unknown engine %q (want vm, closure or ast)", *engine)
	}
	// The span recorder is nil unless requested; every Start/Set/End
	// below is a no-op then, so the hot path carries no bookkeeping.
	var spans *telemetry.Recorder
	if *spansOut != "" || *traceOut != "" || *metricsOut != "" {
		spans = telemetry.NewRecorder()
	}
	root := spans.Start("mccrun")
	sp := spans.Start("read")
	src, err := readInput(fs.Arg(0))
	sp.Set("src_bytes", int64(len(src))).End()
	if err != nil {
		return 0, err
	}
	if *escape && !*amplify {
		return 0, fmt.Errorf("-escape needs -amplify (it selects which rewrites the pre-processor applies)")
	}
	if *vetFirst {
		sp := spans.Start("vet")
		res, err := vet.CheckSource(src)
		if err != nil {
			return 0, err
		}
		fmt.Fprint(os.Stderr, res.String())
		if res.HasErrors() {
			errs, _ := res.Counts()
			return 0, fmt.Errorf("vet found %d errors; refusing to run", errs)
		}
		// The program is clean, so also print what the interprocedural
		// analysis concluded about its allocation sites.
		esc, err := vet.EscapeSource(src)
		if err != nil {
			return 0, err
		}
		fmt.Fprint(os.Stderr, esc.String())
		sp.End()
	}
	if *amplify {
		sp := spans.Start("amplify")
		transformed, rep, err := core.Rewrite(src, core.Options{
			ArraysOnly: *arraysOnly,
			Mode:       core.Mode(*mode),
			Escape:     *escape,
		})
		if err != nil {
			return 0, err
		}
		sp.Set("out_bytes", int64(len(transformed))).End()
		src = transformed
		if *stats {
			fmt.Fprint(os.Stderr, rep.String())
		}
	}
	for _, f := range []struct{ name, val string }{
		{"-profile-out", *profileOut},
		{"-heap-timeline", *heapTimeline},
		{"-heap-profile", *heapProfile},
		{"-record-trace", *recordTrace},
	} {
		if f.val != "" && *engine == "ast" {
			return 0, fmt.Errorf("%s needs -engine vm or closure (the ast engine has no observer hooks)", f.name)
		}
	}
	needEvents := *traceOut != "" || *traceJSONL != "" || *profileOut != ""
	var rec *sim.Recorder
	if *trace > 0 {
		rec = &sim.Recorder{Max: *trace}
	} else if needEvents {
		rec = &sim.Recorder{Max: 4_000_000}
	}
	var prof *obsv.Profiler
	if *profileOut != "" {
		prof = obsv.NewProfiler()
	}
	var timeline *heapobsv.Timeline
	if *heapTimeline != "" {
		timeline = &heapobsv.Timeline{Interval: *heapInterval}
	}
	var sites *heapobsv.SiteProfile
	if *heapProfile != "" {
		sites = heapobsv.NewSiteProfile()
	}
	var recorder *alloctrace.Recorder
	if *recordTrace != "" {
		recorder = alloctrace.NewRecorder(fs.Arg(0))
	}
	var res runResult
	switch *engine {
	case "ast":
		icfg := interp.Config{Processors: *procs, Strategy: *allocName}
		if rec != nil {
			icfg.Tracer = rec
		}
		r, err := interp.RunSource(src, icfg)
		if err != nil {
			return 0, err
		}
		res = runResult{r.Output, r.ExitCode, r.Makespan, r.Alloc,
			r.PoolHits, r.PoolMisses, r.ShadowReuses, r.Sim, r.Footprint}
	case "vm", "closure":
		vcfg := vm.Config{Processors: *procs, Strategy: *allocName, NoOpt: *noOpt, Spans: spans}
		if *engine == "closure" {
			vcfg.Engine = "closure"
		}
		if rec != nil {
			vcfg.Tracer = rec
		}
		if prof != nil {
			vcfg.Profiler = prof
		}
		// Assign through the typed nil checks: a nil *Timeline stored in
		// the interface field would defeat the engine's one-branch guard.
		// When both a timeline and a trace recorder are requested, the
		// single observer slot fans out through heapobsv.Multi; likewise
		// the profiler slot tees to the site profile and the recorder's
		// site-attribution hooks.
		switch {
		case timeline != nil && recorder != nil:
			vcfg.HeapObserver = heapobsv.Multi{timeline, recorder}
		case timeline != nil:
			vcfg.HeapObserver = timeline
		case recorder != nil:
			vcfg.HeapObserver = recorder
		}
		switch {
		case sites != nil && recorder != nil:
			vcfg.HeapProf = heapobsv.ProfTee{sites, recorder}
		case sites != nil:
			vcfg.HeapProf = sites
		case recorder != nil:
			vcfg.HeapProf = recorder
		}
		r, err := vm.RunSource(src, vcfg)
		if err != nil {
			return 0, err
		}
		res = runResult{r.Output, r.ExitCode, r.Makespan, r.Alloc,
			r.PoolHits, r.PoolMisses, r.ShadowReuses, r.Sim, r.Footprint}
	default:
		return 0, fmt.Errorf("unknown engine %q (want vm, closure or ast)", *engine)
	}
	root.End()
	if rec != nil && *trace > 0 {
		fmt.Fprint(os.Stderr, rec.Timeline())
	}
	// The program's output is printed before the artifacts are written,
	// so a failed export never swallows it; a failed stdout write (full
	// disk, closed pipe) is itself an error, not a silent exit 0.
	if _, err := io.WriteString(os.Stdout, res.output); err != nil {
		return 0, fmt.Errorf("writing program output: %w", err)
	}
	if err := writeArtifacts(rec, prof, timeline, sites, spans, res, *procs,
		*traceOut, *traceJSONL, *profileOut, *heapTimeline, *heapProfile, *metricsOut, *spansOut); err != nil {
		return 0, err
	}
	if *recordTrace != "" {
		tr := recorder.Trace()
		if err := tr.Validate(); err != nil {
			return 0, fmt.Errorf("recorded trace failed validation: %w", err)
		}
		if err := os.WriteFile(*recordTrace, tr.Encode(), 0o644); err != nil {
			return 0, err
		}
		if err := os.WriteFile(*recordTrace+".jsonl", tr.JSONL(), 0o644); err != nil {
			return 0, err
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "execution statistics (%s engine)\n", *engine)
		fmt.Fprintf(os.Stderr, "  makespan:        %d cycles\n", res.makespan)
		fmt.Fprintf(os.Stderr, "  heap allocs:     %d (frees %d)\n", res.alloc.Allocs, res.alloc.Frees)
		fmt.Fprintf(os.Stderr, "  pool hits:       %d (misses %d)\n", res.poolHits, res.poolMisses)
		fmt.Fprintf(os.Stderr, "  shadow reuses:   %d\n", res.shadowReuses)
		fmt.Fprintf(os.Stderr, "  lock acquires:   %d (contended %d)\n", res.sim.LockAcquires, res.sim.LockContended)
		fmt.Fprintf(os.Stderr, "  cache misses:    %d (hits %d)\n", res.sim.CacheMisses, res.sim.CacheHits)
		fmt.Fprintf(os.Stderr, "  atomic ops:      %d CAS (%d failed), %d FAA, %d loads, %d stores\n",
			res.sim.AtomicCAS, res.sim.AtomicCASFailed, res.sim.AtomicFAA, res.sim.AtomicLoads, res.sim.AtomicStores)
		fmt.Fprintf(os.Stderr, "  footprint:       %d bytes\n", res.footprint)
	}
	return int(res.exitCode), nil
}

// writeArtifacts emits the requested observability files. Every JSON
// artifact is checked with json.Valid before it reaches disk.
func writeArtifacts(rec *sim.Recorder, prof *obsv.Profiler, timeline *heapobsv.Timeline, sites *heapobsv.SiteProfile,
	spans *telemetry.Recorder, res runResult, procs int,
	traceOut, traceJSONL, profileOut, heapTimeline, heapProfile, metricsOut, spansOut string) error {
	var events []sim.Event
	if rec != nil {
		events = rec.Snapshot()
	}
	if spansOut != "" {
		out := spans.JSONL()
		if spansOut == "-" {
			if _, err := os.Stderr.Write(out); err != nil {
				return err
			}
		} else if err := os.WriteFile(spansOut, out, 0o644); err != nil {
			return err
		}
	}
	if traceOut != "" {
		out, err := obsv.ChromeTraceSpans(events, procs, spans.Spans())
		if err != nil {
			return err
		}
		if !json.Valid(out) {
			return fmt.Errorf("trace export produced invalid JSON")
		}
		if err := os.WriteFile(traceOut, out, 0o644); err != nil {
			return err
		}
	}
	if traceJSONL != "" {
		out, err := obsv.JSONL(events)
		if err != nil {
			return err
		}
		if err := os.WriteFile(traceJSONL, out, 0o644); err != nil {
			return err
		}
	}
	if profileOut != "" {
		prof.Finish(res.makespan)
		if err := os.WriteFile(profileOut, []byte(prof.Folded()), 0o644); err != nil {
			return err
		}
		locks := obsv.FormatLockProfile(obsv.LockProfile(events))
		if err := os.WriteFile(profileOut+".locks", []byte(locks), 0o644); err != nil {
			return err
		}
	}
	if heapTimeline != "" {
		timeline.Finish(res.makespan)
		out := timeline.JSONL()
		if strings.HasSuffix(heapTimeline, ".csv") {
			out = timeline.CSV()
		}
		if err := os.WriteFile(heapTimeline, out, 0o644); err != nil {
			return err
		}
	}
	if heapProfile != "" {
		folded := sites.Folded(heapobsv.MetricAllocBytes)
		if err := os.WriteFile(heapProfile, []byte(folded), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(heapProfile+".sites", []byte(sites.Table()), 0o644); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		reg := obsv.NewRegistry()
		reg.Set("makespan", res.makespan)
		reg.Set("alloc.allocs", res.alloc.Allocs)
		reg.Set("alloc.frees", res.alloc.Frees)
		reg.Set("alloc.peak_bytes", res.alloc.PeakBytes)
		reg.Set("pool.hits", res.poolHits)
		reg.Set("pool.misses", res.poolMisses)
		reg.Set("shadow.reuses", res.shadowReuses)
		reg.Set("sim.lock.acquires", res.sim.LockAcquires)
		reg.Set("sim.lock.contended", res.sim.LockContended)
		reg.Set("sim.lock.wait_cycles", res.sim.LockWaitTime)
		reg.Set("sim.cache.hits", res.sim.CacheHits)
		reg.Set("sim.cache.misses", res.sim.CacheMisses)
		reg.Set("sim.cache.invalidations", res.sim.CacheInvalidations)
		reg.Set("sim.cache.rfos", res.sim.CacheRFOs)
		reg.Set("sim.atomic.cas", res.sim.AtomicCAS)
		reg.Set("sim.atomic.cas_failed", res.sim.AtomicCASFailed)
		reg.Set("sim.atomic.faa", res.sim.AtomicFAA)
		reg.Set("sim.atomic.loads", res.sim.AtomicLoads)
		reg.Set("sim.atomic.stores", res.sim.AtomicStores)
		reg.Set("sim.migrations", res.sim.Migrations)
		reg.Set("footprint.bytes", res.footprint)
		spans.AddTo(reg)
		out, err := reg.JSON()
		if err != nil {
			return err
		}
		if !json.Valid(out) {
			return fmt.Errorf("metrics export produced invalid JSON")
		}
		// "-" routes the snapshot to stderr, keeping the simulated
		// program's stdout byte-diffable against a recorded run.
		if metricsOut == "-" {
			if _, err := os.Stderr.Write(out); err != nil {
				return err
			}
		} else if err := os.WriteFile(metricsOut, out, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func readInput(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
