// Command amplify is the pre-processor CLI: it reads a MiniCC source
// file, applies the Amplify transformation (structure pools via
// operator new/delete overloads, shadow pointers, shadowed array
// realloc) and writes the transformed source.
//
// Usage:
//
//	amplify [flags] input.mcc
//
// Flags:
//
//	-o file         write output to file (default: stdout)
//	-exclude A,B    classes the pre-processor must leave alone (§5.1)
//	-arrays-only    only shadow data-type arrays, the BGw variant (§5.2)
//	-mode m         "shadow" (default) or "flag" (§5.1's one-bit sketch)
//	-report         print a transformation report to stderr
//	-vet            analyze only: print diagnostics, exit 1 on errors
//	-vet-json       analyze only: print machine-readable JSON findings
//	-auto-exclude   run the analyzer and exclude ineligible classes
//	-escape         let the interprocedural escape/lifetime analysis
//	                drive the transform: frame promotion of proven
//	                non-escaping new/delete pairs, lock-free
//	                thread-private pools for thread-local classes, and
//	                pool pre-sizing from inferred allocation bounds
//	-escape-json    analyze only: print the escape analysis verdicts
//	                (per-site classification, class partition, pre-size
//	                hints, V008/V009 findings) as deterministic JSON
//	-spans file     write a JSONL span stream of the pre-processor
//	                pipeline (read -> vet -> rewrite -> write) with
//	                host-time durations and deterministic attributes;
//	                use - for stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"amplify/internal/core"
	"amplify/internal/telemetry"
	"amplify/internal/vet"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	exclude := flag.String("exclude", "", "comma-separated class names to skip")
	arraysOnly := flag.Bool("arrays-only", false, "only shadow data-type arrays (char[]/int[])")
	mode := flag.String("mode", "shadow", "shadow | flag")
	report := flag.Bool("report", false, "print a transformation report to stderr")
	vetOnly := flag.Bool("vet", false, "analyze for memory defects and amplify-safety; no transform")
	vetJSON := flag.Bool("vet-json", false, "like -vet but print JSON findings to stdout")
	autoExclude := flag.Bool("auto-exclude", false, "exclude classes the analyzer rules ineligible")
	escape := flag.Bool("escape", false, "apply the escape-analysis-driven rewrites (frame promotion, thread-private pools, pool pre-sizing)")
	escapeJSON := flag.Bool("escape-json", false, "analyze only: print the escape analysis verdicts as JSON")
	spansOut := flag.String("spans", "", "write a JSONL span stream of the pipeline phases (use - for stderr)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: amplify [flags] input.mcc  (use - for stdin)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var spans *telemetry.Recorder
	if *spansOut != "" {
		spans = telemetry.NewRecorder()
	}
	root := spans.Start("amplify")
	sp := spans.Start("read")
	src, err := readInput(flag.Arg(0))
	sp.Set("src_bytes", int64(len(src))).End()
	if err != nil {
		fatal(err)
	}

	if *vetOnly || *vetJSON {
		sp = spans.Start("vet")
		runVet(src, flag.Arg(0), *vetJSON)
		sp.End()
		root.End()
		writeSpans(spans, *spansOut)
		return
	}
	if *escapeJSON {
		rep, err := vet.EscapeSource(src)
		if err != nil {
			fatal(err)
		}
		raw, err := rep.JSON(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(raw))
		return
	}

	opt := core.Options{
		ArraysOnly: *arraysOnly,
		Mode:       core.Mode(*mode),
		Escape:     *escape,
	}
	if *exclude != "" {
		opt.Exclude = strings.Split(*exclude, ",")
	}
	if *autoExclude {
		sp = spans.Start("vet")
		excl, err := vet.EligibilitySource(src)
		sp.Set("ineligible", int64(len(excl))).End()
		if err != nil {
			fatal(err)
		}
		opt.AutoExclude = map[string]string{}
		for _, e := range excl {
			opt.AutoExclude[e.Class] = e.Reason
		}
	}
	sp = spans.Start("rewrite")
	transformed, rep, err := core.Rewrite(src, opt)
	sp.Set("out_bytes", int64(len(transformed))).End()
	if err != nil {
		fatal(err)
	}
	if *report {
		fmt.Fprint(os.Stderr, rep.String())
	}
	sp = spans.Start("write")
	if *out == "" {
		fmt.Print(transformed)
	} else if err := os.WriteFile(*out, []byte(transformed), 0o644); err != nil {
		fatal(err)
	}
	sp.End()
	root.End()
	writeSpans(spans, *spansOut)
}

// writeSpans emits the recorded pipeline spans as JSONL; "-" routes
// them to stderr so they never mix with the transformed source on
// stdout.
func writeSpans(spans *telemetry.Recorder, path string) {
	if spans == nil || path == "" {
		return
	}
	out := spans.JSONL()
	if path == "-" {
		os.Stderr.Write(out)
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fatal(err)
	}
}

// runVet analyzes the source without transforming it. Diagnostics go
// to stderr (or JSON to stdout); the exit code is 1 when any
// error-severity finding exists, so the command works as a CI gate.
func runVet(src, path string, asJSON bool) {
	res, err := vet.CheckSource(src)
	if err != nil {
		fatal(err)
	}
	if asJSON {
		raw, err := res.JSON(path)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(raw))
	} else {
		fmt.Fprint(os.Stderr, res.String())
		errs, warns := res.Counts()
		fmt.Fprintf(os.Stderr, "%s: %d errors, %d warnings\n", path, errs, warns)
		for _, e := range res.Ineligible() {
			fmt.Fprintf(os.Stderr, "%s: class %s ineligible for amplification (%s)\n", path, e.Class, e.Reason)
		}
	}
	if res.HasErrors() {
		os.Exit(1)
	}
}

func readInput(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amplify:", err)
	os.Exit(1)
}
