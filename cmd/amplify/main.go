// Command amplify is the pre-processor CLI: it reads a MiniCC source
// file, applies the Amplify transformation (structure pools via
// operator new/delete overloads, shadow pointers, shadowed array
// realloc) and writes the transformed source.
//
// Usage:
//
//	amplify [flags] input.mcc
//
// Flags:
//
//	-o file        write output to file (default: stdout)
//	-exclude A,B   classes the pre-processor must leave alone (§5.1)
//	-arrays-only   only shadow data-type arrays, the BGw variant (§5.2)
//	-mode m        "shadow" (default) or "flag" (§5.1's one-bit sketch)
//	-report        print a transformation report to stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"amplify/internal/core"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	exclude := flag.String("exclude", "", "comma-separated class names to skip")
	arraysOnly := flag.Bool("arrays-only", false, "only shadow data-type arrays (char[]/int[])")
	mode := flag.String("mode", "shadow", "shadow | flag")
	report := flag.Bool("report", false, "print a transformation report to stderr")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: amplify [flags] input.mcc  (use - for stdin)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	opt := core.Options{
		ArraysOnly: *arraysOnly,
		Mode:       core.Mode(*mode),
	}
	if *exclude != "" {
		opt.Exclude = strings.Split(*exclude, ",")
	}
	transformed, rep, err := core.Rewrite(src, opt)
	if err != nil {
		fatal(err)
	}
	if *report {
		fmt.Fprint(os.Stderr, rep.String())
	}
	if *out == "" {
		fmt.Print(transformed)
		return
	}
	if err := os.WriteFile(*out, []byte(transformed), 0o644); err != nil {
		fatal(err)
	}
}

func readInput(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amplify:", err)
	os.Exit(1)
}
