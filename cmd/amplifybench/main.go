// Command amplifybench regenerates the tables and figures of the
// paper's evaluation section on the simulated 8-processor machine.
//
// Usage:
//
//	amplifybench [flags]
//
// Flags:
//
//	-exp name     one of table1, fig4..fig11, claims, endtoend, or "all"
//	-quick        smaller runs (coarser thread grid, fewer trees/CDRs)
//	-list         list experiment names and exit
//	-j N          run up to N independent simulations concurrently
//	              (default: the host's CPU count; output is identical
//	              for every N — only wall-clock changes)
//	-json         emit a machine-readable BENCH report (schema
//	              amplify-bench/2) on stdout instead of text
//	-trace-dir d  export observability artifacts into d: Chrome traces
//	              of the tree workload under serial/ptmalloc/amplify, a
//	              JSONL event stream, a per-lock contention profile,
//	              folded stacks of the end-to-end MiniCC program, and a
//	              metrics.json snapshot
//	-no-opt       disable the VM bytecode optimizer (default runs -O);
//	              simulated results are identical either way — CI
//	              enforces it — only host wall-clock changes
//	-cpuprofile f write a pprof CPU profile of the whole run to f
//	-memprofile f write a pprof heap profile (post-GC) to f
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"amplify/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "amplifybench:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment to run (see -list)")
	quick := flag.Bool("quick", false, "reduced experiment sizes")
	list := flag.Bool("list", false, "list experiments")
	format := flag.String("format", "text", "text | csv | chart (figures only)")
	jobs := flag.Int("j", runtime.NumCPU(), "max concurrent simulations")
	jsonOut := flag.Bool("json", false, "emit machine-readable report on stdout")
	noOpt := flag.Bool("no-opt", false, "disable the VM bytecode optimizer (identical simulated results, slower host)")
	traceDir := flag.String("trace-dir", "", "export trace/profile/metrics artifacts into this directory")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write heap profile to file")
	flag.Parse()

	names := append(bench.Names(), "endtoend")
	if *list {
		fmt.Println(strings.Join(names, "\n"))
		return nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	r := bench.NewRunner(*quick)
	r.Jobs = *jobs
	r.VMNoOpt = *noOpt
	var todo []string
	if *exp == "all" {
		todo = []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "claims", "memory", "pipeline", "sensitivity", "endtoend"}
	} else {
		todo = strings.Split(*exp, ",")
	}

	start := time.Now()
	// Warm the memo with up to -j concurrent simulations; each
	// experiment below then reduces to table formatting over the same
	// cells a sequential run would compute, in the same order.
	if *jobs > 1 {
		if err := r.Precompute(todo); err != nil {
			return err
		}
	}

	if *jsonOut {
		rep, err := r.Report(todo)
		if err != nil {
			return err
		}
		rep.WallSeconds = time.Since(start).Seconds()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else if err := runText(r, todo, *format); err != nil {
		return err
	}

	if *traceDir != "" {
		if err := r.ExportTraces(*traceDir); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "observability artifacts written to %s\n", *traceDir)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

func runText(r *bench.Runner, todo []string, format string) error {
	for i, name := range todo {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		var out string
		var err error
		switch {
		case name == "endtoend" && format == "text":
			out, err = r.EndToEnd()
		case (format == "csv" || format == "chart") && (strings.HasPrefix(name, "fig") || name == "endtoend"):
			var f *bench.Figure
			f, err = r.Figure(name)
			if err == nil && format == "csv" {
				out = f.CSV()
			} else if err == nil {
				out = f.Chart(16)
			}
		default:
			out, err = r.Run(name)
		}
		if err != nil {
			return err
		}
		fmt.Print(out)
		if format != "csv" {
			fmt.Printf("[%s regenerated in %.1fs]\n", name, time.Since(start).Seconds())
		}
	}
	return nil
}
