// Command amplifybench regenerates the tables and figures of the
// paper's evaluation section on the simulated 8-processor machine.
//
// Usage:
//
//	amplifybench [flags]
//
// Flags:
//
//	-exp name     one of table1, fig4..fig11, claims, escape, endtoend,
//	              or "all" (see -list for the full set)
//	-quick        smaller runs (coarser thread grid, fewer trees/CDRs)
//	-list         list experiment names and exit
//	-j N          run up to N independent simulations concurrently
//	              (default: the host's CPU count; output is identical
//	              for every N — only wall-clock changes)
//	-json         emit a machine-readable BENCH report (schema
//	              amplify-bench/7) on stdout instead of text
//	-alloc list   comma-separated allocators for the contend experiment
//	              (default serial,ptmalloc,hoard,lfalloc); unknown names
//	              fail fast with the registered strategies
//	-trace-dir d  export observability artifacts into d: Chrome traces
//	              of the tree workload under serial/ptmalloc/amplify, a
//	              JSONL event stream, a per-lock contention profile,
//	              folded stacks of the end-to-end MiniCC program, and a
//	              metrics.json snapshot
//	-heap-dir d   export heap-introspection artifacts into d:
//	              virtual-time heap timelines (JSONL+CSV) of the tree
//	              workload under serial/ptmalloc/amplify, allocation-site
//	              folded stacks of the end-to-end program, and a
//	              heap-summary.json of per-cell footprint/fragmentation
//	-compare old new  diff two bench reports (no experiments are run);
//	              exits 3 when a makespan, footprint or fragmentation
//	              number regressed past -threshold; host-benchmark
//	              reports (schema amplify-hostbench/*) are detected by
//	              schema and diffed on ns/op and allocs/op instead —
//	              use a generous -threshold there, host timings are
//	              noisy by construction
//	-threshold p  allowed relative degradation for -compare, in percent
//	              (fragmentation: percentage points); default 0 = exact
//	-explain old new  attribute the regressions between two simulated
//	              bench reports: diff like -compare, re-run the worst
//	              regressed cells with the lock/cycle/heap-site
//	              profilers attached, and print a deterministic ranked
//	              report naming the responsible locks, fn@line sites
//	              and allocator-op classes (JSON with -json; -j and
//	              -threshold apply; report bytes are identical at any
//	              -j). Exits 0 — explaining is diagnosis, not a gate
//	-no-opt       disable the VM bytecode optimizer (default runs -O);
//	              simulated results are identical either way — CI
//	              enforces it — only host wall-clock changes
//	-cpuprofile f write a pprof CPU profile of the whole run to f
//	-memprofile f write a pprof heap profile (post-GC) to f
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"amplify/internal/alloc"
	"amplify/internal/bench"
	"amplify/internal/workload"
)

// errRegression marks a -compare run that found regressions; main
// turns it into exit code 3 so CI can tell "bench regressed" apart
// from "bench broke".
var errRegression = errors.New("bench comparison found regressions")

func main() {
	if err := run(); err != nil {
		if errors.Is(err, errRegression) {
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "amplifybench:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment to run (see -list)")
	quick := flag.Bool("quick", false, "reduced experiment sizes")
	list := flag.Bool("list", false, "list experiments")
	format := flag.String("format", "text", "text | csv | chart (figures only)")
	jobs := flag.Int("j", runtime.NumCPU(), "max concurrent simulations")
	jsonOut := flag.Bool("json", false, "emit machine-readable report on stdout")
	noOpt := flag.Bool("no-opt", false, "disable the VM bytecode optimizer (identical simulated results, slower host)")
	engine := flag.String("engine", "", "VM execution engine for MiniCC experiments: switch (default) | closure; identical simulated results, different host wall-clock")
	allocList := flag.String("alloc", "", "comma-separated allocators for the contend experiment (default "+strings.Join(workload.ChurnStrategies(), ",")+")")
	hostBench := flag.Bool("host-bench", false, "run the host-side Go benchmarks (VM engines, scheduler) and emit a BENCH_host JSON report on stdout; no simulation experiments are run")
	traceDir := flag.String("trace-dir", "", "export trace/profile/metrics artifacts into this directory")
	heapDir := flag.String("heap-dir", "", "export heap timeline/site-profile/summary artifacts into this directory")
	compare := flag.Bool("compare", false, "diff two bench reports: amplifybench -compare baseline.json current.json")
	explain := flag.Bool("explain", false, "attribute regressions between two bench reports: amplifybench -explain baseline.json current.json")
	threshold := flag.Float64("threshold", 0, "with -compare/-explain: allowed degradation in percent (0 = exact)")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write heap profile to file")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two report files: baseline.json current.json")
		}
		return runCompare(flag.Arg(0), flag.Arg(1), *threshold)
	}

	if *explain {
		if flag.NArg() != 2 {
			return fmt.Errorf("-explain needs exactly two report files: baseline.json current.json")
		}
		return runExplain(flag.Arg(0), flag.Arg(1), *threshold, *jobs, *jsonOut)
	}

	if *hostBench {
		return runHostBench()
	}

	switch *engine {
	case "", "switch", "closure":
	default:
		return fmt.Errorf("unknown engine %q (want switch or closure)", *engine)
	}

	names := append(bench.Names(), "endtoend")
	if *list {
		fmt.Println(strings.Join(names, "\n"))
		return nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	r := bench.NewRunner(*quick)
	r.Jobs = *jobs
	r.VMNoOpt = *noOpt
	r.Engine = *engine
	if *allocList != "" {
		// Fail fast on unknown allocator names, before any simulation
		// runs: a typo'd -alloc should cost milliseconds, not a warm-up.
		names := strings.Split(*allocList, ",")
		for _, n := range names {
			if err := alloc.Valid(n); err != nil {
				return err
			}
		}
		r.ContendAllocs = names
	}
	var todo []string
	if *exp == "all" {
		todo = []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "claims", "memory", "pipeline", "sensitivity", "escape", "scale", "contend", "replay", "endtoend"}
	} else {
		todo = strings.Split(*exp, ",")
	}

	start := time.Now()
	// Warm the memo with up to -j concurrent simulations; each
	// experiment below then reduces to table formatting over the same
	// cells a sequential run would compute, in the same order.
	if *jobs > 1 {
		if err := r.Precompute(todo); err != nil {
			return err
		}
	}

	if *jsonOut {
		rep, err := r.Report(todo)
		if err != nil {
			return err
		}
		rep.WallSeconds = time.Since(start).Seconds()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else if err := runText(r, todo, *format); err != nil {
		return err
	}

	if *traceDir != "" {
		if err := r.ExportTraces(*traceDir); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "observability artifacts written to %s\n", *traceDir)
	}

	if *heapDir != "" {
		if err := r.ExportHeap(*heapDir); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "heap artifacts written to %s\n", *heapDir)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// runCompare diffs two bench report files and prints the summary; a
// regression surfaces as errRegression (exit 3), a malformed report as
// an ordinary error (exit 1). The report kind is sniffed from the
// schema field: amplify-bench/* reports diff simulated makespans and
// heap numbers, amplify-hostbench/* reports diff host ns/op and
// allocs/op (pair a generous -threshold with those — host timings are
// noisy by construction). Mixing the two kinds is an error.
func runCompare(baselinePath, currentPath string, threshold float64) error {
	baseRaw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	curRaw, err := os.ReadFile(currentPath)
	if err != nil {
		return err
	}
	baseSchema, err := sniffSchema(baselinePath, baseRaw)
	if err != nil {
		return err
	}
	curSchema, err := sniffSchema(currentPath, curRaw)
	if err != nil {
		return err
	}
	baseHost := strings.HasPrefix(baseSchema, "amplify-hostbench/")
	if curHost := strings.HasPrefix(curSchema, "amplify-hostbench/"); baseHost != curHost {
		return fmt.Errorf("cannot compare %q (%s) against %q (%s): one is a host-benchmark report, the other a simulated-bench report",
			baselinePath, baseSchema, currentPath, curSchema)
	}

	var cmp *bench.Comparison
	if baseHost {
		var baseline, current bench.HostReport
		if err := loadJSON(baselinePath, baseRaw, &baseline); err != nil {
			return err
		}
		if err := loadJSON(currentPath, curRaw, &current); err != nil {
			return err
		}
		cmp, err = bench.CompareHost(&baseline, &current, threshold)
	} else {
		var baseline, current bench.Report
		if err := loadJSON(baselinePath, baseRaw, &baseline); err != nil {
			return err
		}
		if err := loadJSON(currentPath, curRaw, &current); err != nil {
			return err
		}
		cmp, err = bench.Compare(&baseline, &current, threshold)
	}
	if err != nil {
		return err
	}
	fmt.Print(cmp.Format())
	if cmp.Regressed() {
		return errRegression
	}
	return nil
}

// runExplain diffs two simulated bench reports and attributes every
// regression via profiled re-runs of the worst cells (bench.Explain).
// Unlike -compare it always exits 0 on success: attribution is the
// diagnostic step after a -compare gate has already failed.
func runExplain(baselinePath, currentPath string, threshold float64, jobs int, jsonOut bool) error {
	var baseline, current bench.Report
	for _, f := range []struct {
		path string
		into *bench.Report
	}{{baselinePath, &baseline}, {currentPath, &current}} {
		raw, err := os.ReadFile(f.path)
		if err != nil {
			return err
		}
		schema, err := sniffSchema(f.path, raw)
		if err != nil {
			return err
		}
		if !strings.HasPrefix(schema, "amplify-bench/") {
			return fmt.Errorf("%s: -explain needs simulated bench reports (amplify-bench/*), got %q", f.path, schema)
		}
		if err := loadJSON(f.path, raw, f.into); err != nil {
			return err
		}
	}
	ex, err := bench.Explain(&baseline, &current, bench.ExplainOptions{
		ThresholdPct: threshold,
		Jobs:         jobs,
	})
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(ex)
	}
	fmt.Print(ex.Format())
	return nil
}

// sniffSchema extracts the schema field of a report file so -compare
// can dispatch without committing to a full struct first.
func sniffSchema(path string, raw []byte) (string, error) {
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &head); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	if head.Schema == "" {
		return "", fmt.Errorf("%s: no schema field — not a bench report", path)
	}
	return head.Schema, nil
}

func loadJSON(path string, raw []byte, v any) error {
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func runText(r *bench.Runner, todo []string, format string) error {
	for i, name := range todo {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		var out string
		var err error
		switch {
		case name == "endtoend" && format == "text":
			out, err = r.EndToEnd()
		case (format == "csv" || format == "chart") && (strings.HasPrefix(name, "fig") || name == "endtoend"):
			var f *bench.Figure
			f, err = r.Figure(name)
			if err == nil && format == "csv" {
				out = f.CSV()
			} else if err == nil {
				out = f.Chart(16)
			}
		default:
			out, err = r.Run(name)
		}
		if err != nil {
			return err
		}
		fmt.Print(out)
		if format != "csv" {
			fmt.Printf("[%s regenerated in %.1fs]\n", name, time.Since(start).Seconds())
		}
	}
	return nil
}
