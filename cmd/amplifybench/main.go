// Command amplifybench regenerates the tables and figures of the
// paper's evaluation section on the simulated 8-processor machine.
//
// Usage:
//
//	amplifybench [flags]
//
// Flags:
//
//	-exp name   one of table1, fig4..fig11, claims, endtoend, or "all"
//	-quick      smaller runs (coarser thread grid, fewer trees/CDRs)
//	-list       list experiment names and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"amplify/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -list)")
	quick := flag.Bool("quick", false, "reduced experiment sizes")
	list := flag.Bool("list", false, "list experiments")
	format := flag.String("format", "text", "text | csv | chart (figures only)")
	flag.Parse()

	names := append(bench.Names(), "endtoend")
	if *list {
		fmt.Println(strings.Join(names, "\n"))
		return
	}
	r := bench.NewRunner(*quick)
	var todo []string
	if *exp == "all" {
		todo = []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "claims", "memory", "pipeline", "sensitivity", "endtoend"}
	} else {
		todo = strings.Split(*exp, ",")
	}
	for i, name := range todo {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		var out string
		var err error
		switch {
		case name == "endtoend":
			out, err = r.EndToEnd()
		case (*format == "csv" || *format == "chart") && strings.HasPrefix(name, "fig"):
			var f *bench.Figure
			f, err = r.Figure(name)
			if err == nil && *format == "csv" {
				out = f.CSV()
			} else if err == nil {
				out = f.Chart(16)
			}
		default:
			out, err = r.Run(name)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "amplifybench:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		if *format != "csv" {
			fmt.Printf("[%s regenerated in %.1fs]\n", name, time.Since(start).Seconds())
		}
	}
}
