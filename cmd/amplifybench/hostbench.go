package main

import (
	"encoding/json"
	"os"

	"amplify/internal/bench"
)

// runHostBench implements -host-bench: run the host-side wall-clock
// benchmark suite (VM engines, scheduler) and emit the BENCH_host
// report on stdout. Unlike the simulation experiments, these numbers
// are host-dependent by design — they track how fast the simulator
// itself runs, not what it simulates.
func runHostBench() error {
	rep, err := bench.HostBench()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
