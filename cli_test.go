package amplify

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the three CLIs once per test binary.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"amplify", "mccrun", "amplifybench"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, b)
		}
	}
	return dir
}

const cliProgram = `
class Node {
public:
    Node(int d) {
        v = d;
        if (d > 0) {
            left = new Node(d - 1);
            right = new Node(d - 1);
        }
    }
    ~Node() {
        delete left;
        delete right;
    }
private:
    Node* left;
    Node* right;
    int v;
};

int main() {
    for (int i = 0; i < 10; i = i + 1) {
        Node* n = new Node(3);
        delete n;
    }
    print("done");
    return 0;
}
`

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	srcPath := filepath.Join(t.TempDir(), "prog.mcc")
	if err := os.WriteFile(srcPath, []byte(cliProgram), 0o644); err != nil {
		t.Fatal(err)
	}

	// amplify: transform and report.
	out, err := exec.Command(filepath.Join(bin, "amplify"), "-report", srcPath).CombinedOutput()
	if err != nil {
		t.Fatalf("amplify: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"leftShadow", "operator new", "pooled classes"} {
		if !strings.Contains(text, want) {
			t.Errorf("amplify output missing %q", want)
		}
	}

	// amplify -o writes a file that mccrun can execute.
	ampPath := filepath.Join(t.TempDir(), "amped.mcc")
	if out, err := exec.Command(filepath.Join(bin, "amplify"), "-o", ampPath, srcPath).CombinedOutput(); err != nil {
		t.Fatalf("amplify -o: %v\n%s", err, out)
	}

	// mccrun on both engines and both variants agrees.
	for _, engine := range []string{"vm", "ast"} {
		for _, p := range []string{srcPath, ampPath} {
			out, err := exec.Command(filepath.Join(bin, "mccrun"), "-engine", engine, p).CombinedOutput()
			if err != nil {
				t.Fatalf("mccrun %s %s: %v\n%s", engine, p, err, out)
			}
			if string(out) != "done\n" {
				t.Errorf("mccrun %s %s output = %q", engine, p, out)
			}
		}
	}

	// mccrun -amplify -stats reports the transformation inline.
	cmd := exec.Command(filepath.Join(bin, "mccrun"), "-amplify", "-stats", srcPath)
	combined, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mccrun -amplify: %v\n%s", err, combined)
	}
	if !strings.Contains(string(combined), "pool hits") {
		t.Errorf("missing stats output:\n%s", combined)
	}

	// amplifybench lists and runs a cheap experiment.
	out, err = exec.Command(filepath.Join(bin, "amplifybench"), "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("amplifybench -list: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "fig11") {
		t.Errorf("list missing fig11:\n%s", out)
	}
	out, err = exec.Command(filepath.Join(bin, "amplifybench"), "-exp", "table1").CombinedOutput()
	if err != nil {
		t.Fatalf("amplifybench table1: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "63") {
		t.Errorf("table1 output wrong:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	// Parse error surfaces with a position and non-zero exit.
	srcPath := filepath.Join(t.TempDir(), "bad.mcc")
	if err := os.WriteFile(srcPath, []byte("class {"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(filepath.Join(bin, "amplify"), srcPath).CombinedOutput()
	if err == nil {
		t.Fatalf("expected failure, got:\n%s", out)
	}
	if !strings.Contains(string(out), "1:7") {
		t.Errorf("error lacks position:\n%s", out)
	}
}
