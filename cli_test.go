package amplify

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"amplify/internal/alloctrace"
)

// buildTools compiles the four CLIs once per test binary.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"amplify", "mccrun", "amplifybench", "mcctrace"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, b)
		}
	}
	return dir
}

const cliProgram = `
class Node {
public:
    Node(int d) {
        v = d;
        if (d > 0) {
            left = new Node(d - 1);
            right = new Node(d - 1);
        }
    }
    ~Node() {
        delete left;
        delete right;
    }
private:
    Node* left;
    Node* right;
    int v;
};

int main() {
    for (int i = 0; i < 10; i = i + 1) {
        Node* n = new Node(3);
        delete n;
    }
    print("done");
    return 0;
}
`

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	srcPath := filepath.Join(t.TempDir(), "prog.mcc")
	if err := os.WriteFile(srcPath, []byte(cliProgram), 0o644); err != nil {
		t.Fatal(err)
	}

	// amplify: transform and report.
	out, err := exec.Command(filepath.Join(bin, "amplify"), "-report", srcPath).CombinedOutput()
	if err != nil {
		t.Fatalf("amplify: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"leftShadow", "operator new", "pooled classes"} {
		if !strings.Contains(text, want) {
			t.Errorf("amplify output missing %q", want)
		}
	}

	// amplify -o writes a file that mccrun can execute.
	ampPath := filepath.Join(t.TempDir(), "amped.mcc")
	if out, err := exec.Command(filepath.Join(bin, "amplify"), "-o", ampPath, srcPath).CombinedOutput(); err != nil {
		t.Fatalf("amplify -o: %v\n%s", err, out)
	}

	// mccrun on both engines and both variants agrees.
	for _, engine := range []string{"vm", "ast"} {
		for _, p := range []string{srcPath, ampPath} {
			out, err := exec.Command(filepath.Join(bin, "mccrun"), "-engine", engine, p).CombinedOutput()
			if err != nil {
				t.Fatalf("mccrun %s %s: %v\n%s", engine, p, err, out)
			}
			if string(out) != "done\n" {
				t.Errorf("mccrun %s %s output = %q", engine, p, out)
			}
		}
	}

	// mccrun -amplify -stats reports the transformation inline.
	cmd := exec.Command(filepath.Join(bin, "mccrun"), "-amplify", "-stats", srcPath)
	combined, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mccrun -amplify: %v\n%s", err, combined)
	}
	if !strings.Contains(string(combined), "pool hits") {
		t.Errorf("missing stats output:\n%s", combined)
	}

	// amplifybench lists and runs a cheap experiment.
	out, err = exec.Command(filepath.Join(bin, "amplifybench"), "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("amplifybench -list: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "fig11") {
		t.Errorf("list missing fig11:\n%s", out)
	}
	out, err = exec.Command(filepath.Join(bin, "amplifybench"), "-exp", "table1").CombinedOutput()
	if err != nil {
		t.Fatalf("amplifybench table1: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "63") {
		t.Errorf("table1 output wrong:\n%s", out)
	}
}

// TestCLIHeapArtifacts covers the heap-introspection flags: mccrun
// writes a timeline and a site profile, refuses them on the ast
// engine, and a failed export exits non-zero without swallowing the
// program's output.
func TestCLIHeapArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	srcPath := filepath.Join(t.TempDir(), "prog.mcc")
	if err := os.WriteFile(srcPath, []byte(cliProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tlPath := filepath.Join(dir, "timeline.jsonl")
	csvPath := filepath.Join(dir, "timeline.csv")
	hpPath := filepath.Join(dir, "sites.txt")

	out, err := exec.Command(filepath.Join(bin, "mccrun"), "-amplify",
		"-heap-timeline", tlPath, "-heap-interval", "5000",
		"-heap-profile", hpPath, srcPath).CombinedOutput()
	if err != nil {
		t.Fatalf("mccrun heap flags: %v\n%s", err, out)
	}
	tl, err := os.ReadFile(tlPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(tl)), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("timeline line not JSON: %s", line)
		}
	}
	if !strings.Contains(string(tl), `"pool_hits"`) {
		t.Error("timeline missing pool counters")
	}
	hp, err := os.ReadFile(hpPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(hp), "(Node)") {
		t.Errorf("site profile missing Node sites:\n%s", hp)
	}
	if _, err := os.Stat(hpPath + ".sites"); err != nil {
		t.Errorf("per-site table not written: %v", err)
	}

	// CSV variant picks the format from the extension.
	if out, err := exec.Command(filepath.Join(bin, "mccrun"),
		"-heap-timeline", csvPath, srcPath).CombinedOutput(); err != nil {
		t.Fatalf("mccrun csv timeline: %v\n%s", err, out)
	}
	if csv, _ := os.ReadFile(csvPath); !strings.HasPrefix(string(csv), "now,footprint") {
		t.Errorf("csv timeline header wrong: %.60s", csv)
	}

	// The ast engine has no observer hooks.
	if out, err := exec.Command(filepath.Join(bin, "mccrun"), "-engine", "ast",
		"-heap-timeline", tlPath, srcPath).CombinedOutput(); err == nil {
		t.Errorf("ast engine accepted -heap-timeline:\n%s", out)
	}

	// A failed export must exit non-zero and still deliver the
	// program's stdout (the exit-code satellite fix).
	cmd := exec.Command(filepath.Join(bin, "mccrun"),
		"-heap-timeline", filepath.Join(dir, "no-such-dir", "t.jsonl"), srcPath)
	stdout, err := cmd.Output()
	if err == nil {
		t.Error("mccrun exited 0 on failed -heap-timeline write")
	}
	if string(stdout) != "done\n" {
		t.Errorf("program output lost on export failure: %q", stdout)
	}
	cmd = exec.Command(filepath.Join(bin, "mccrun"),
		"-trace-out", filepath.Join(dir, "no-such-dir", "t.json"), srcPath)
	if stdout, err := cmd.Output(); err == nil {
		t.Error("mccrun exited 0 on failed -trace-out write")
	} else if string(stdout) != "done\n" {
		t.Errorf("program output lost on trace failure: %q", stdout)
	}
}

// TestCLICompare drives amplifybench -compare over seeded reports:
// clean diff exits 0, regression exits 3, garbage exits 1.
func TestCLICompare(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", `{"schema":"amplify-bench/3",
		"makespans":{"tree/a":1000,"tree/b":2000},
		"heap":{"tree/a":{"footprint":4096,"peak_bytes":512,"int_frag_bp":100,"ext_frag_bp":0}}}`)
	same := write("same.json", `{"schema":"amplify-bench/3",
		"makespans":{"tree/a":1000,"tree/b":2000},
		"heap":{"tree/a":{"footprint":4096,"peak_bytes":512,"int_frag_bp":100,"ext_frag_bp":0}}}`)
	worse := write("worse.json", `{"schema":"amplify-bench/3",
		"makespans":{"tree/a":1100,"tree/b":2000},
		"heap":{"tree/a":{"footprint":4096,"peak_bytes":512,"int_frag_bp":100,"ext_frag_bp":0}}}`)

	out, err := exec.Command(filepath.Join(bin, "amplifybench"), "-compare", base, same).CombinedOutput()
	if err != nil {
		t.Fatalf("identical reports: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "no regressions") {
		t.Errorf("clean diff output:\n%s", out)
	}

	out, err = exec.Command(filepath.Join(bin, "amplifybench"), "-compare", base, worse).CombinedOutput()
	exitErr, ok := err.(*exec.ExitError)
	if !ok || exitErr.ExitCode() != 3 {
		t.Fatalf("regression diff: err = %v (want exit 3)\n%s", err, out)
	}
	if !strings.Contains(string(out), "makespan tree/a: 1000 -> 1100") {
		t.Errorf("regression not named:\n%s", out)
	}

	// -threshold forgives the 10% drift.
	if out, err := exec.Command(filepath.Join(bin, "amplifybench"),
		"-compare", "-threshold", "15", base, worse).CombinedOutput(); err != nil {
		t.Fatalf("threshold 15%%: %v\n%s", err, out)
	}

	garbage := write("garbage.json", "not json")
	out, err = exec.Command(filepath.Join(bin, "amplifybench"), "-compare", base, garbage).CombinedOutput()
	if exitErr, ok := err.(*exec.ExitError); !ok || exitErr.ExitCode() != 1 {
		t.Fatalf("garbage report: err = %v (want exit 1)\n%s", err, out)
	}

	// Host-benchmark reports are detected by schema and diffed on
	// ns/op with the same threshold flag (generously set — host
	// timings are noisy).
	hostBase := write("host_base.json", `{"schema":"amplify-hostbench/1","go_version":"go1.23",
		"benchmarks":[{"name":"vm/arith_loop/switch","ns_per_op":1000000,"allocs_per_op":50}]}`)
	hostSame := write("host_same.json", `{"schema":"amplify-hostbench/1","go_version":"go1.23",
		"benchmarks":[{"name":"vm/arith_loop/switch","ns_per_op":1200000,"allocs_per_op":50}]}`)
	hostWorse := write("host_worse.json", `{"schema":"amplify-hostbench/1","go_version":"go1.23",
		"benchmarks":[{"name":"vm/arith_loop/switch","ns_per_op":2500000,"allocs_per_op":50}]}`)
	if out, err := exec.Command(filepath.Join(bin, "amplifybench"),
		"-compare", "-threshold", "50", hostBase, hostSame).CombinedOutput(); err != nil {
		t.Fatalf("host drift within threshold: %v\n%s", err, out)
	}
	out, err = exec.Command(filepath.Join(bin, "amplifybench"),
		"-compare", "-threshold", "50", hostBase, hostWorse).CombinedOutput()
	if exitErr, ok := err.(*exec.ExitError); !ok || exitErr.ExitCode() != 3 {
		t.Fatalf("host regression: err = %v (want exit 3)\n%s", err, out)
	}
	if !strings.Contains(string(out), "ns_per_op vm/arith_loop/switch") {
		t.Errorf("host regression not named:\n%s", out)
	}

	// Mixing a host report with a simulated-bench report is an error,
	// not an empty diff.
	out, err = exec.Command(filepath.Join(bin, "amplifybench"), "-compare", base, hostBase).CombinedOutput()
	if exitErr, ok := err.(*exec.ExitError); !ok || exitErr.ExitCode() != 1 {
		t.Fatalf("mixed report kinds: err = %v (want exit 1)\n%s", err, out)
	}
}

// TestCLIAllocFailFast: a typo'd -alloc name must fail immediately —
// before any parsing or simulation — naming the valid strategies, on
// both CLIs; the lock-free allocator must be accepted by both.
func TestCLIAllocFailFast(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	srcPath := filepath.Join(t.TempDir(), "prog.mcc")
	if err := os.WriteFile(srcPath, []byte(cliProgram), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(filepath.Join(bin, "mccrun"), "-alloc", "tcmalloc", srcPath).CombinedOutput()
	if exitErr, ok := err.(*exec.ExitError); !ok || exitErr.ExitCode() != 1 {
		t.Fatalf("mccrun unknown -alloc: err = %v (want exit 1)\n%s", err, out)
	}
	for _, want := range []string{`"tcmalloc"`, "serial", "ptmalloc", "hoard", "lfalloc"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("mccrun -alloc error missing %q:\n%s", want, out)
		}
	}

	out, err = exec.Command(filepath.Join(bin, "amplifybench"), "-alloc", "lfalloc,tcmalloc", "-exp", "contend").CombinedOutput()
	if exitErr, ok := err.(*exec.ExitError); !ok || exitErr.ExitCode() != 1 {
		t.Fatalf("amplifybench unknown -alloc: err = %v (want exit 1)\n%s", err, out)
	}
	if !strings.Contains(string(out), `"tcmalloc"`) || !strings.Contains(string(out), "serial") {
		t.Errorf("amplifybench -alloc error missing the valid list:\n%s", out)
	}

	// The lock-free allocator runs a program end to end.
	out, err = exec.Command(filepath.Join(bin, "mccrun"), "-alloc", "lfalloc", "-stats", srcPath).CombinedOutput()
	if err != nil {
		t.Fatalf("mccrun -alloc lfalloc: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "done") || !strings.Contains(string(out), "atomic ops:") {
		t.Errorf("lfalloc run output:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	// Parse error surfaces with a position and non-zero exit.
	srcPath := filepath.Join(t.TempDir(), "bad.mcc")
	if err := os.WriteFile(srcPath, []byte("class {"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(filepath.Join(bin, "amplify"), srcPath).CombinedOutput()
	if err == nil {
		t.Fatalf("expected failure, got:\n%s", out)
	}
	if !strings.Contains(string(out), "1:7") {
		t.Errorf("error lacks position:\n%s", out)
	}
}

// vetProgram exhibits all six analyzer defect classes; Bad collects
// the five error-severity ones, Leaky only warnings.
const vetProgram = `class Child {
public:
    Child(int v) {
        x = v;
    }
    ~Child() {
    }
    int get() {
        return x;
    }
private:
    int x;
};

class Bad {
public:
    Bad(int n) {
        if (n > 0) {
            kid = new Child(n);
        }
        spare = new Child(1);
        other = spare;
    }
    ~Bad() {
        delete kid;
        delete kid;
        delete spare;
    }
    int poke() {
        delete spare;
        return spare->get();
    }
    Child* steal() {
        return kid;
    }
    void drop() {
        Child* p = kid;
        delete p;
    }
private:
    Child* kid;
    Child* spare;
    Child* other;
};

class Leaky {
public:
    Leaky(int n) {
        buf = new char[n];
        buf = new char[n + 1];
    }
    ~Leaky() {
    }
private:
    char* buf;
};

void consume(Child* c) {
    delete c;
}

int main() {
    Bad* b = new Bad(3);
    int r = b->poke();
    Child* c = new Child(7);
    consume(c);
    print("done");
    return r;
}
`

func TestCLIVet(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	srcPath := filepath.Join(t.TempDir(), "six.mcc")
	if err := os.WriteFile(srcPath, []byte(vetProgram), 0o644); err != nil {
		t.Fatal(err)
	}

	// amplify -vet reports every defect class at its exact position and
	// exits nonzero because errors are present.
	out, err := exec.Command(filepath.Join(bin, "amplify"), "-vet", srcPath).CombinedOutput()
	if err == nil {
		t.Fatalf("amplify -vet exit = 0 on defective program:\n%s", out)
	}
	text := string(out)
	for _, want := range []string{
		"22:15: V005 error",
		"26:9: V003 error",
		"31:16: V002 error",
		"34:9: V005 error",
		"38:9: V004 error",
		"41:12: V001 error",
		"50:13: V006 warning",
		"55:11: V006 warning",
		"63:10: V006 warning",
		"6 errors, 3 warnings",
		"class Bad ineligible for amplification (V001 ctor-uninit, V002 use-after-delete, V003 double-delete, V004 alias-delete, V005 field-escape)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("amplify -vet output missing %q:\n%s", want, text)
		}
	}

	// amplify -vet-json emits machine-readable findings.
	out, err = exec.Command(filepath.Join(bin, "amplify"), "-vet-json", srcPath).Output()
	if err == nil {
		t.Fatal("amplify -vet-json exit = 0 on defective program")
	}
	var parsed struct {
		Errors      int `json:"errors"`
		Warnings    int `json:"warnings"`
		AutoExclude []struct {
			Class string `json:"class"`
		} `json:"autoExclude"`
	}
	if jerr := json.Unmarshal(out, &parsed); jerr != nil {
		t.Fatalf("-vet-json output not JSON: %v\n%s", jerr, out)
	}
	if parsed.Errors != 6 || parsed.Warnings != 3 {
		t.Errorf("-vet-json counts = %+v", parsed)
	}
	if len(parsed.AutoExclude) != 1 || parsed.AutoExclude[0].Class != "Bad" {
		t.Errorf("-vet-json autoExclude = %+v", parsed.AutoExclude)
	}

	// amplify -auto-exclude removes exactly the ineligible class, keeps
	// the rest amplified, and says so in the report.
	out, err = exec.Command(filepath.Join(bin, "amplify"), "-auto-exclude", "-report", srcPath).CombinedOutput()
	if err != nil {
		t.Fatalf("amplify -auto-exclude: %v\n%s", err, out)
	}
	text = string(out)
	if !strings.Contains(text, "auto-excluded:       Bad (V001 ctor-uninit, V002 use-after-delete, V003 double-delete, V004 alias-delete, V005 field-escape)") {
		t.Errorf("report missing auto-excluded section:\n%s", text)
	}
	if strings.Contains(text, "__pool_alloc(Bad)") {
		t.Error("ineligible class Bad was still pooled")
	}
	for _, want := range []string{"__pool_alloc(Child)", "__pool_alloc(Leaky)"} {
		if !strings.Contains(text, want) {
			t.Errorf("eligible class lost its pool (%s missing):\n%s", want, text)
		}
	}

	// Manual -exclude merges with auto-exclusion.
	out, err = exec.Command(filepath.Join(bin, "amplify"), "-auto-exclude", "-exclude", "Leaky", "-report", srcPath).CombinedOutput()
	if err != nil {
		t.Fatalf("amplify -auto-exclude -exclude: %v\n%s", err, out)
	}
	text = string(out)
	if strings.Contains(text, "__pool_alloc(Leaky)") || strings.Contains(text, "__pool_alloc(Bad)") {
		t.Errorf("excluded classes still pooled:\n%s", text)
	}
	if !strings.Contains(text, "skipped classes:     Leaky (excluded by option)") {
		t.Errorf("manual exclusion not reported:\n%s", text)
	}

	// mccrun -vet refuses to execute a program with vet errors.
	out, err = exec.Command(filepath.Join(bin, "mccrun"), "-vet", srcPath).CombinedOutput()
	if err == nil {
		t.Fatalf("mccrun -vet ran a defective program:\n%s", out)
	}
	if !strings.Contains(string(out), "refusing to run") {
		t.Errorf("mccrun -vet error message:\n%s", out)
	}

	// A clean program passes -vet (exit 0) and still runs under -vet.
	cleanPath := filepath.Join(t.TempDir(), "clean.mcc")
	clean := `class Node {
public:
    Node(int v) {
        val = v;
        next = null;
    }
    ~Node() {
        delete next;
    }
private:
    int val;
    Node* next;
};

int main() {
    Node* n = new Node(1);
    delete n;
    print("ok");
    return 0;
}
`
	if err := os.WriteFile(cleanPath, []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(filepath.Join(bin, "amplify"), "-vet", cleanPath).CombinedOutput(); err != nil {
		t.Fatalf("amplify -vet on clean program: %v\n%s", err, out)
	}
	out, err = exec.Command(filepath.Join(bin, "mccrun"), "-vet", "-amplify", cleanPath).CombinedOutput()
	if err != nil {
		t.Fatalf("mccrun -vet -amplify on clean program: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "ok") {
		t.Errorf("clean program output = %q", out)
	}
}

// TestCLIEngineFailFast: a typo'd -engine name must fail immediately —
// before the program file is even read — naming the valid engines.
func TestCLIEngineFailFast(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)

	// The program path does not exist: if the engine check ran after
	// reading the input, the error would be about the file instead.
	out, err := exec.Command(filepath.Join(bin, "mccrun"), "-engine", "turbo", "missing.mcc").CombinedOutput()
	if exitErr, ok := err.(*exec.ExitError); !ok || exitErr.ExitCode() != 1 {
		t.Fatalf("mccrun unknown -engine: err = %v (want exit 1)\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{`"turbo"`, "vm", "closure", "ast"} {
		if !strings.Contains(text, want) {
			t.Errorf("mccrun -engine error missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "missing.mcc") {
		t.Errorf("engine validation ran after reading the input:\n%s", text)
	}

	// Valid engines still run.
	srcPath := filepath.Join(t.TempDir(), "prog.mcc")
	if err := os.WriteFile(srcPath, []byte(cliProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"vm", "closure", "ast"} {
		out, err := exec.Command(filepath.Join(bin, "mccrun"), "-engine", engine, srcPath).CombinedOutput()
		if err != nil {
			t.Fatalf("mccrun -engine %s: %v\n%s", engine, err, out)
		}
	}
}

// TestCLIRecordTrace: mccrun -record-trace captures a decodable,
// attributed allocation trace with a JSONL mirror, and mcctrace can
// analyze and replay the captured file.
func TestCLIRecordTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "prog.mcc")
	if err := os.WriteFile(srcPath, []byte(cliProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "prog.trace")

	out, err := exec.Command(filepath.Join(bin, "mccrun"), "-record-trace", tracePath, srcPath).CombinedOutput()
	if err != nil {
		t.Fatalf("mccrun -record-trace: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := alloctrace.Decode(raw)
	if err != nil {
		t.Fatalf("captured trace does not decode: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("captured trace invalid: %v", err)
	}
	st := tr.Stats()
	if st.Allocs == 0 || st.Frees == 0 {
		t.Errorf("captured trace is empty: %+v", st)
	}
	attributed := false
	for _, s := range tr.Sites {
		if strings.Contains(s, "(Node)") {
			attributed = true
		}
	}
	if !attributed {
		t.Errorf("captured trace sites carry no MiniCC attribution: %v", tr.Sites)
	}
	if _, err := os.Stat(tracePath + ".jsonl"); err != nil {
		t.Errorf("JSONL mirror missing: %v", err)
	}

	// mcctrace analyze prints the shape summary for the captured file.
	out, err = exec.Command(filepath.Join(bin, "mcctrace"), "analyze", tracePath).CombinedOutput()
	if err != nil {
		t.Fatalf("mcctrace analyze: %v\n%s", err, out)
	}
	for _, want := range []string{"size histogram", "lifetime", "(Node)"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}

	// mcctrace replay drives the captured trace through another
	// allocator on the simulated machine.
	out, err = exec.Command(filepath.Join(bin, "mcctrace"), "replay", "-alloc", "ptmalloc", tracePath).CombinedOutput()
	if err != nil {
		t.Fatalf("mcctrace replay: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "ptmalloc") || !strings.Contains(string(out), "makespan") {
		t.Errorf("replay output missing result line:\n%s", out)
	}
}

// TestCLITraceGenMatchesCommitted: `mcctrace gen` into a scratch
// directory reproduces the committed corpora manifest byte for byte.
func TestCLITraceGenMatchesCommitted(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	out, err := exec.Command(filepath.Join(bin, "mcctrace"), "gen", "-dir", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("mcctrace gen: %v\n%s", err, out)
	}
	got, err := os.ReadFile(filepath.Join(dir, "SHA256SUMS"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "traces", "SHA256SUMS"))
	if err != nil {
		t.Fatalf("committed manifest missing: %v (run `go run ./cmd/mcctrace gen`)", err)
	}
	if string(got) != string(want) {
		t.Errorf("regenerated corpora manifest differs from committed:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCLIExplain drives amplifybench -explain over a seeded regression:
// the report must name the serial allocator's global lock in its top-3
// attributions and be byte-identical at -j1 and -j8.
func TestCLIExplain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// The cell is the quick-mode contention cell; the makespans are
	// fabricated (old deflated 20%), so the explain probe re-measures
	// the real cell and attributes the regression to its dominant
	// locks regardless of the exact numbers in the reports.
	old := write("old.json", `{"schema":"amplify-bench/7","quick":true,
		"makespans":{"contend/serial/p8/threads64":800000},
		"metrics":{"sim.lock.wait_cycles":1000,"sim.lock.contended":10}}`)
	new := write("new.json", `{"schema":"amplify-bench/7","quick":true,
		"makespans":{"contend/serial/p8/threads64":1000000},
		"metrics":{"sim.lock.wait_cycles":9000,"sim.lock.contended":80}}`)

	var outs [2][]byte
	for i, jobs := range []string{"1", "8"} {
		out, err := exec.Command(filepath.Join(bin, "amplifybench"),
			"-explain", "-j", jobs, old, new).Output()
		if err != nil {
			t.Fatalf("amplifybench -explain -j %s: %v\n%s", jobs, err, out)
		}
		outs[i] = out
	}
	if string(outs[0]) != string(outs[1]) {
		t.Errorf("explain report differs between -j1 and -j8:\n--- j1 ---\n%s--- j8 ---\n%s", outs[0], outs[1])
	}
	text := string(outs[0])
	if !strings.Contains(text, "makespan contend/serial/p8/threads64") {
		t.Errorf("regressed cell not named:\n%s", text)
	}
	// serial.global must rank in the top-3 attribution lines.
	top := ""
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "1.") || strings.HasPrefix(trimmed, "2.") || strings.HasPrefix(trimmed, "3.") {
			top += trimmed + "\n"
		}
	}
	if !strings.Contains(top, "serial.global") {
		t.Errorf("serial.global not in top-3 attributions:\n%s", text)
	}

	// JSON form parses and carries the same culprit.
	out, err := exec.Command(filepath.Join(bin, "amplifybench"),
		"-explain", "-json", old, new).Output()
	if err != nil {
		t.Fatalf("amplifybench -explain -json: %v\n%s", err, out)
	}
	var ex struct {
		Schema string `json:"schema"`
		Cells  []struct {
			Attributions []struct {
				Kind string `json:"kind"`
				Name string `json:"name"`
			} `json:"attributions"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(out, &ex); err != nil {
		t.Fatalf("-explain -json not JSON: %v\n%s", err, out)
	}
	if ex.Schema != "amplify-explain/1" || len(ex.Cells) != 1 {
		t.Errorf("explain JSON = %+v", ex)
	}

	// A host-benchmark report is rejected with a clear error.
	host := write("host.json", `{"schema":"amplify-hostbench/1","benchmarks":[]}`)
	if out, err := exec.Command(filepath.Join(bin, "amplifybench"), "-explain", old, host).CombinedOutput(); err == nil {
		t.Errorf("-explain accepted a host-bench report:\n%s", out)
	}
}

// TestCLISpansAndStderrDiagnostics covers the pipeline span stream and
// the stdout-purity satellite: -spans writes the span JSONL (with the
// vm phases nested under the root), -metrics - and -spans - go to
// stderr, and none of it perturbs the program's stdout or makespan.
func TestCLISpansAndStderrDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "prog.mcc")
	if err := os.WriteFile(srcPath, []byte(cliProgram), 0o644); err != nil {
		t.Fatal(err)
	}

	// Baseline metrics without any span/metrics flags.
	plainMetrics := filepath.Join(dir, "plain.json")
	if out, err := exec.Command(filepath.Join(bin, "mccrun"), "-amplify", "-metrics", plainMetrics, srcPath).CombinedOutput(); err != nil {
		t.Fatalf("mccrun -metrics: %v\n%s", err, out)
	}

	// Full observability run: spans to file, metrics to stderr, trace
	// with the host track. Stdout must stay exactly the program output.
	spansPath := filepath.Join(dir, "spans.jsonl")
	tracePath := filepath.Join(dir, "trace.json")
	cmd := exec.Command(filepath.Join(bin, "mccrun"), "-amplify",
		"-spans", spansPath, "-metrics", "-", "-trace-out", tracePath, srcPath)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		t.Fatalf("mccrun spans run: %v\n%s", err, stderr.String())
	}
	if string(stdout) != "done\n" {
		t.Errorf("diagnostics leaked into stdout: %q", stdout)
	}
	if !strings.Contains(stderr.String(), `"span.simulate.count":1`) {
		t.Errorf("-metrics - snapshot missing span counters on stderr:\n%s", stderr.String())
	}

	spans, err := os.ReadFile(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id":"mccrun"`, `"id":"mccrun/read"`,
		`"id":"mccrun/amplify"`, `"id":"mccrun/parse"`, `"id":"mccrun/compile"`, `"id":"mccrun/simulate"`} {
		if !strings.Contains(string(spans), want) {
			t.Errorf("span stream missing %s:\n%s", want, spans)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(string(spans)), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("span line not JSON: %s", line)
		}
	}

	// The Chrome trace carries the host track next to the virtual CPUs.
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), `"cat":"host"`) || !strings.Contains(string(trace), `"mccrun/simulate"`) {
		t.Errorf("Chrome trace missing the host span track: %.200s", trace)
	}

	// Observation left the simulated numbers untouched: the makespan in
	// the stderr metrics snapshot equals the plain run's.
	var plain, observed map[string]int64
	raw, err := os.ReadFile(plainMetrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &plain); err != nil {
		t.Fatal(err)
	}
	// The vet analysis prints to stderr before the metrics snapshot, so
	// the JSON object is the last chunk of the stream.
	stderrJSON := stderr.String()
	if i := strings.LastIndex(stderrJSON, `{"`); i >= 0 {
		stderrJSON = stderrJSON[i:]
	}
	if err := json.Unmarshal([]byte(stderrJSON), &observed); err != nil {
		t.Fatalf("stderr metrics not JSON: %v\n%s", err, stderr.String())
	}
	if plain["makespan"] == 0 || plain["makespan"] != observed["makespan"] {
		t.Errorf("spans/metrics observation changed the makespan: plain %d, observed %d",
			plain["makespan"], observed["makespan"])
	}

	// amplify -spans traces the pre-processor phases.
	ampSpans := filepath.Join(dir, "amp-spans.jsonl")
	if out, err := exec.Command(filepath.Join(bin, "amplify"), "-spans", ampSpans,
		"-o", filepath.Join(dir, "out.mcc"), srcPath).CombinedOutput(); err != nil {
		t.Fatalf("amplify -spans: %v\n%s", err, out)
	}
	ampOut, err := os.ReadFile(ampSpans)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id":"amplify"`, `"id":"amplify/read"`, `"id":"amplify/rewrite"`, `"id":"amplify/write"`} {
		if !strings.Contains(string(ampOut), want) {
			t.Errorf("amplify span stream missing %s:\n%s", want, ampOut)
		}
	}
}

// TestCLITraceStdin: mcctrace analyze/replay accept - to read the
// binary trace from stdin, so recorded runs pipe straight through.
func TestCLITraceStdin(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "prog.mcc")
	if err := os.WriteFile(srcPath, []byte(cliProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "prog.trace")
	if out, err := exec.Command(filepath.Join(bin, "mccrun"), "-record-trace", tracePath, srcPath).CombinedOutput(); err != nil {
		t.Fatalf("mccrun -record-trace: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(filepath.Join(bin, "mcctrace"), "analyze", "-")
	cmd.Stdin = strings.NewReader(string(raw))
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mcctrace analyze -: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "size histogram") || !strings.Contains(string(out), "top sites") {
		t.Errorf("analyze - output wrong:\n%s", out)
	}

	cmd = exec.Command(filepath.Join(bin, "mcctrace"), "replay", "-alloc", "hoard", "-")
	cmd.Stdin = strings.NewReader(string(raw))
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mcctrace replay -: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "hoard") || !strings.Contains(string(out), "makespan") {
		t.Errorf("replay - output wrong:\n%s", out)
	}

	// Garbage on stdin is a decode error, not a corpus fallback.
	cmd = exec.Command(filepath.Join(bin, "mcctrace"), "analyze", "-")
	cmd.Stdin = strings.NewReader("not a trace")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("mcctrace analyze - accepted garbage:\n%s", out)
	}
}
