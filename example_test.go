package amplify_test

import (
	"fmt"
	"strings"

	"amplify"
)

// ExampleRewrite shows what the pre-processor does to the paper's §3.2
// Root/Child pattern: the destructor's delete becomes a logical delete
// into a shadow pointer, and the constructor's new becomes a placement
// new that reuses the shadowed child.
func ExampleRewrite() {
	src := `
class Child {
public:
    Child(int v) {
        data = v;
    }
    ~Child() {
    }
private:
    int data;
};

class Root {
public:
    Root(int n) {
        left = new Child(n);
    }
    ~Root() {
        delete left;
    }
private:
    Child* left;
};

int main() {
    Root* r = new Root(1);
    delete r;
    return 0;
}
`
	out, report, err := amplify.Rewrite(src, amplify.RewriteOptions{})
	if err != nil {
		panic(err)
	}
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.Contains(trimmed, "Shadow") || strings.Contains(trimmed, "->~Child()") {
			fmt.Println(trimmed)
		}
	}
	fmt.Println("pooled:", strings.Join(report.Pooled, ", "))
	// Output:
	// left = new(leftShadow) Child(n);
	// left->~Child();
	// leftShadow = left;
	// Child* leftShadow; // shadow of left (added by Amplify)
	// pooled: Child, Root
}

// ExampleRunProgram executes a program before and after amplification
// on the simulated 8-CPU machine and compares heap traffic.
func ExampleRunProgram() {
	src := `
class Box {
public:
    Box(int v) {
        val = v;
    }
    ~Box() {
    }
    int get() {
        return val;
    }
private:
    int val;
};

int main() {
    int total = 0;
    for (int i = 0; i < 100; i = i + 1) {
        Box* b = new Box(i);
        total = total + b->get();
        delete b;
    }
    print("total", total);
    return 0;
}
`
	plain, err := amplify.RunProgram(src, amplify.RunConfig{})
	if err != nil {
		panic(err)
	}
	transformed, _, err := amplify.Rewrite(src, amplify.RewriteOptions{})
	if err != nil {
		panic(err)
	}
	fast, err := amplify.RunProgram(transformed, amplify.RunConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Print(plain.Output)
	fmt.Println("same behavior:", plain.Output == fast.Output)
	fmt.Printf("heap allocations: %d -> %d\n", plain.HeapAllocs, fast.HeapAllocs)
	fmt.Println("faster:", fast.Makespan < plain.Makespan)
	// Output:
	// total 4950
	// same behavior: true
	// heap allocations: 100 -> 1
	// faster: true
}
