// Package amplify reproduces "A Method for Automatic Optimization of
// Dynamic Memory Management in C++" (Häggander, Lidén & Lundberg, ICPP
// 2001): the Amplify pre-processor, which rewrites object-oriented
// source code so that every class transparently recycles whole object
// structures through per-class pools with shadow pointers, exploiting
// the temporal locality of programs built with frameworks and design
// patterns.
//
// The package is a facade over the full reproduction stack:
//
//   - Rewrite runs the pre-processor over MiniCC source (a C++ subset
//     with classes, new/delete, and spawn/join threading);
//   - RunProgram executes MiniCC programs — original or rewritten — on
//     a deterministic simulated multiprocessor (compiled to bytecode or
//     tree-walked) with a choice of C-library allocators (Solaris-style
//     serial malloc, ptmalloc, Hoard, a SmartHeap-like per-thread-cache
//     allocator, LKmalloc);
//   - Experiment regenerates the tables and figures of the paper's
//     evaluation section.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// measured reproduction of every table and figure.
package amplify

import (
	"fmt"

	"amplify/internal/bench"
	"amplify/internal/core"
	"amplify/internal/interp"
	"amplify/internal/vet"
	"amplify/internal/vm"
)

// RewriteOptions configure the pre-processor.
type RewriteOptions struct {
	// Exclude lists classes the pre-processor must leave alone (§5.1:
	// "the designer may choose not to amplify objects").
	Exclude []string
	// ArraysOnly limits the transformation to data-type arrays
	// (char[]/int[]) handled by shadowed realloc — the variant measured
	// on the Billing Gateway in §5.2.
	ArraysOnly bool
	// FlagMode uses the logical-delete flag encoding sketched in §5.1
	// instead of shadow pointers.
	FlagMode bool
}

// RewriteReport summarizes a transformation.
type RewriteReport struct {
	// Pooled lists the classes that received pool operators.
	Pooled []string
	// ShadowFields is the number of synthesized shadow fields per class.
	ShadowFields map[string]int
	// DeleteRewrites, NewRewrites, ArrayNewRewrites and
	// ArrayDeleteRewrites count applied rewrite rules.
	DeleteRewrites      int
	NewRewrites         int
	ArrayNewRewrites    int
	ArrayDeleteRewrites int
	// SingleThreaded reports that pool locks will be elided because the
	// program never spawns a thread.
	SingleThreaded bool
	// Text is the human-readable report.
	Text string
}

// Rewrite applies the Amplify pre-processor to MiniCC source and
// returns the transformed source, which is guaranteed to parse and
// type-check.
func Rewrite(src string, opt RewriteOptions) (string, *RewriteReport, error) {
	mode := core.ModeShadow
	if opt.FlagMode {
		mode = core.ModeFlag
	}
	out, rep, err := core.Rewrite(src, core.Options{
		Exclude:    opt.Exclude,
		ArraysOnly: opt.ArraysOnly,
		Mode:       mode,
	})
	if err != nil {
		return "", nil, err
	}
	return out, &RewriteReport{
		Pooled:              rep.Pooled,
		ShadowFields:        rep.ShadowFields,
		DeleteRewrites:      rep.DeleteRewrites,
		NewRewrites:         rep.NewRewrites,
		ArrayNewRewrites:    rep.ArrayNewRewrites,
		ArrayDeleteRewrites: rep.ArrayDeleteRewrites,
		SingleThreaded:      rep.SingleThreaded,
		Text:                rep.String(),
	}, nil
}

// Vet runs the flow-sensitive static analyzer over MiniCC source. It
// returns the human-readable findings (one diagnostic per line), true
// when the program is free of error-severity defects, and the classes
// ruled ineligible for amplification mapped to the condemning
// diagnostic codes — the map feeds auto-exclusion (see the amplify
// CLI's -auto-exclude flag).
func Vet(src string) (findings string, clean bool, ineligible map[string]string, err error) {
	res, err := vet.CheckSource(src)
	if err != nil {
		return "", false, nil, err
	}
	ineligible = map[string]string{}
	for _, e := range res.Ineligible() {
		ineligible[e.Class] = e.Reason
	}
	return res.String(), !res.HasErrors(), ineligible, nil
}

// RunConfig parameterizes program execution on the simulated machine.
type RunConfig struct {
	// Allocator is the C-library allocator: "serial" (default; the
	// Solaris-style baseline), "ptmalloc", "hoard", "smartheap" or
	// "lkmalloc".
	Allocator string
	// Processors is the simulated CPU count (default 8, the paper's
	// machines).
	Processors int
	// MaxSteps bounds interpreted statements (default 50 million).
	MaxSteps int64
	// Engine selects the execution engine: "vm" (compiled bytecode,
	// default) or "ast" (tree-walking interpreter). The two are
	// semantically equivalent (differentially tested).
	Engine string
}

// RunResult reports a program execution.
type RunResult struct {
	// Output is everything the program printed.
	Output string
	// ExitCode is main's return value.
	ExitCode int64
	// Makespan is the completion time in virtual cycles.
	Makespan int64
	// HeapAllocs and HeapFrees count C-library allocator operations.
	HeapAllocs, HeapFrees int64
	// PoolHits and PoolMisses count structure-pool operations
	// (pre-processed programs only).
	PoolHits, PoolMisses int64
	// ShadowReuses counts array allocations served from shadow memory.
	ShadowReuses int64
	// LockAcquires and LockContended count mutex traffic.
	LockAcquires, LockContended int64
	// CacheMisses counts simulated cache misses.
	CacheMisses int64
	// FootprintBytes is the simulated process memory consumption.
	FootprintBytes int64
}

// RunProgram executes MiniCC source on the simulated multiprocessor.
func RunProgram(src string, cfg RunConfig) (RunResult, error) {
	switch cfg.Engine {
	case "", "vm":
		res, err := vm.RunSource(src, vm.Config{
			Processors: cfg.Processors,
			Strategy:   cfg.Allocator,
			MaxSteps:   cfg.MaxSteps,
		})
		if err != nil {
			return RunResult{}, err
		}
		return RunResult{
			Output:         res.Output,
			ExitCode:       res.ExitCode,
			Makespan:       res.Makespan,
			HeapAllocs:     res.Alloc.Allocs,
			HeapFrees:      res.Alloc.Frees,
			PoolHits:       res.PoolHits,
			PoolMisses:     res.PoolMisses,
			ShadowReuses:   res.ShadowReuses,
			LockAcquires:   res.Sim.LockAcquires,
			LockContended:  res.Sim.LockContended,
			CacheMisses:    res.Sim.CacheMisses,
			FootprintBytes: res.Footprint,
		}, nil
	case "ast":
		res, err := interp.RunSource(src, interp.Config{
			Processors: cfg.Processors,
			Strategy:   cfg.Allocator,
			MaxSteps:   cfg.MaxSteps,
		})
		if err != nil {
			return RunResult{}, err
		}
		return RunResult{
			Output:         res.Output,
			ExitCode:       res.ExitCode,
			Makespan:       res.Makespan,
			HeapAllocs:     res.Alloc.Allocs,
			HeapFrees:      res.Alloc.Frees,
			PoolHits:       res.PoolHits,
			PoolMisses:     res.PoolMisses,
			ShadowReuses:   res.ShadowReuses,
			LockAcquires:   res.Sim.LockAcquires,
			LockContended:  res.Sim.LockContended,
			CacheMisses:    res.Sim.CacheMisses,
			FootprintBytes: res.Footprint,
		}, nil
	}
	return RunResult{}, fmt.Errorf("amplify: unknown engine %q (want vm or ast)", cfg.Engine)
}

// Experiments lists the experiment names accepted by Experiment:
// table1, fig4 through fig11, claims, memory, pipeline, sensitivity
// and endtoend.
func Experiments() []string {
	return append(bench.Names(), "endtoend")
}

// Experiment regenerates one of the paper's tables or figures and
// returns it as rendered text. Set quick for reduced run sizes.
func Experiment(name string, quick bool) (string, error) {
	r := bench.NewRunner(quick)
	if name == "endtoend" {
		return r.EndToEnd()
	}
	out, err := r.Run(name)
	if err != nil {
		return "", fmt.Errorf("amplify: %w", err)
	}
	return out, nil
}
